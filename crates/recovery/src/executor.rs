//! The recovery executor: runs plan steps against the cloud through the
//! consistent API layer, verifies the repair closed-loop, and escalates
//! along the plan ladder when budgets run out.

use pod_assert::{AssertionOutcome, ConsistentApi, ConsistentError, ExpectedEnv, RetryPolicy};
use pod_cloud::{ApiError, AsgUpdate, Cloud, Instance, InstanceId, InstanceState};
use pod_log::{LogEvent, LogStorage, Severity};
use pod_obs::{Counter, EventId, LogHistogram, Obs};
use pod_sim::{SimDuration, SimTime};

use crate::plan::{PlanLibrary, RecoveryPlan, RecoveryStep, ResourceKind};

/// Budgets for the executor.
#[derive(Debug, Clone)]
pub struct RecoveryConfig {
    /// Retry policy for individual repair calls (one consistent-layer call
    /// per step action).
    pub step_policy: RetryPolicy,
    /// Retry policy for convergence waits
    /// ([`RecoveryStep::WaitLaunchConfigSettled`] and terminate
    /// confirmation) — long, because instance relaunches take minutes of
    /// virtual time.
    pub wait_policy: RetryPolicy,
    /// How many times a failed step is re-attempted before the plan is
    /// abandoned (fallback or escalation).
    pub max_step_attempts: u32,
    /// Cost of staging a plan cold: resolving its parameters against the
    /// environment, checking step preconditions and warming the consistent
    /// API handles. A plan pre-staged during diagnosis (see
    /// [`PreparedPlan`]) skips this entirely — that is the fast path's
    /// zero-staging-latency win.
    pub stage_latency: SimDuration,
}

impl Default for RecoveryConfig {
    fn default() -> RecoveryConfig {
        RecoveryConfig {
            step_policy: RetryPolicy {
                max_retries: 4,
                base_backoff: SimDuration::from_millis(200),
                multiplier: 2.0,
                timeout: SimDuration::from_secs(30),
            },
            wait_policy: RetryPolicy {
                max_retries: 60,
                base_backoff: SimDuration::from_secs(2),
                multiplier: 1.2,
                timeout: SimDuration::from_secs(600),
            },
            max_step_attempts: 2,
            stage_latency: SimDuration::from_millis(1500),
        }
    }
}

/// A plan staged ahead of the diagnosis verdict: parameters resolved,
/// preconditions checked, API handles warm. Produced by the dispatcher
/// while the fault tree is still being walked; consumed with
/// [`RecoveryExecutor::recover_prepared`].
#[derive(Debug, Clone)]
pub struct PreparedPlan {
    /// The root cause this plan repairs — the speculation target.
    pub root_cause: String,
    /// The fully instantiated plan.
    pub plan: RecoveryPlan,
    /// When the plan was staged (virtual time).
    pub staged_at: SimTime,
}

/// Where a recovered run's repair time went, on the virtual clock. The
/// segments sum to ≈ MTTR and tell future optimisation passes which phase
/// dominates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryPhases {
    /// Detection → diagnosis start (sweep wait + dispatch delay).
    pub detection: SimDuration,
    /// Fault-tree walk, including the diagnosis-service overhead.
    pub diagnosis: SimDuration,
    /// Plan staging (zero when the plan was pre-staged speculatively).
    pub staging: SimDuration,
    /// Step execution, measured on the modeled parallel lanes (makespan,
    /// not the sum of step durations).
    pub repair: SimDuration,
    /// Closed-loop assertion re-checks.
    pub verification: SimDuration,
}

/// What a recovery is asked to repair: one confirmed root cause plus the
/// context the diagnosing detection carried.
#[derive(Debug, Clone)]
pub struct RecoveryRequest {
    /// Task id of this recovery operation (also its trace id for
    /// self-conformance-checking).
    pub task_id: String,
    /// The confirmed root-cause node id (e.g. `lc-wrong-ami`).
    pub root_cause: String,
    /// Instantiated root-cause description, for the log.
    pub description: String,
    /// When the underlying error was detected — MTTR counts from here.
    pub detected_at: SimTime,
    /// The offending instance, when the detection carried one.
    pub instance: Option<InstanceId>,
    /// The expected environment to repair towards.
    pub env: ExpectedEnv,
    /// The causal event of the detection (or diagnosis) this recovery
    /// answers; the whole repair chains under it in the event log.
    pub parent_event: Option<EventId>,
}

/// Terminal state of a recovery run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoveryOutcome {
    /// The repair executed and the closed-loop re-check passed.
    Recovered,
    /// The run was handed to a human.
    Escalated {
        /// Whether an operator page was raised (always true today; kept
        /// explicit so quieter escalation channels stay representable).
        to_operator: bool,
        /// Why automation gave up.
        reason: String,
    },
}

impl RecoveryOutcome {
    /// Whether the run ended repaired and verified.
    pub fn is_recovered(&self) -> bool {
        matches!(self, RecoveryOutcome::Recovered)
    }

    /// Canonical tag (`recovered` / `escalated`).
    pub fn tag(&self) -> &'static str {
        match self {
            RecoveryOutcome::Recovered => "recovered",
            RecoveryOutcome::Escalated { .. } => "escalated",
        }
    }
}

/// One executed (or exhausted) plan step.
#[derive(Debug, Clone)]
pub struct StepRecord {
    /// The plan the step belongs to.
    pub plan: String,
    /// Step name.
    pub step: String,
    /// Attempts consumed (1 = first try succeeded).
    pub attempts: u32,
    /// Whether the step eventually succeeded.
    pub ok: bool,
    /// Success detail or final error.
    pub detail: String,
    /// Virtual time the step finished.
    pub at: SimTime,
}

/// One re-checked assertion of the closed-loop verification.
#[derive(Debug, Clone)]
pub struct VerifyRecord {
    /// The assertion key (matches the fault-tree selector keys).
    pub key: String,
    /// Whether the re-check passed.
    pub passed: bool,
}

/// The full, deterministic record of one recovery run.
#[derive(Debug, Clone)]
pub struct RecoveryRun {
    /// Task id (= trace id of the self-monitoring process instance).
    pub task_id: String,
    /// The root cause this run repaired.
    pub root_cause: String,
    /// Terminal state.
    pub outcome: RecoveryOutcome,
    /// Plan ids in ladder order (primary first).
    pub plans_tried: Vec<String>,
    /// Executed steps.
    pub steps: Vec<StepRecord>,
    /// Closed-loop verification results, across all plans tried.
    pub verifications: Vec<VerifyRecord>,
    /// When the underlying error was detected.
    pub detected_at: SimTime,
    /// When recovery started executing.
    pub started_at: SimTime,
    /// When the run reached its terminal state (for a recovered run, the
    /// moment the re-check passed), on the modeled parallel timeline.
    pub finished_at: SimTime,
    /// MTTR phase breakdown (detection/diagnosis filled in by the
    /// dispatcher, which knows the diagnosis timings).
    pub phases: RecoveryPhases,
    /// The environment the run repaired towards.
    pub env: ExpectedEnv,
    /// The Asgard-style log lines the run emitted — the input to
    /// [`crate::monitor::conformance_check`].
    pub log: Vec<LogEvent>,
}

impl RecoveryRun {
    /// Mean-time-to-repair contribution: detection to verified repair.
    /// `None` for escalated runs (their repair time is human-bound) and
    /// for step-less reviews (nothing was repaired — the incident resolved
    /// itself, so there is no repair time to measure).
    pub fn mttr(&self) -> Option<SimDuration> {
        (self.outcome.is_recovered() && self.is_repair())
            .then(|| self.finished_at.duration_since(self.detected_at))
    }

    /// Whether this run executed (or attempted) an actual repair, as
    /// opposed to a step-less operation-end review (`confirm-resolved`)
    /// of an incident that needed none.
    pub fn is_repair(&self) -> bool {
        self.plans_tried.iter().any(|p| p != "confirm-resolved")
    }

    /// Canonical transcript: one line per emitted log event, stamped with
    /// virtual time. Same seed ⇒ byte-identical transcript.
    pub fn transcript(&self) -> String {
        self.log
            .iter()
            .map(|e| {
                format!(
                    "{}us|{}|{}",
                    e.timestamp.as_micros(),
                    self.task_id,
                    e.message
                )
            })
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// Determinism digest over transcript and outcome.
    pub fn digest(&self) -> String {
        format!("{}\n=> {}", self.transcript(), self.outcome.tag())
    }
}

/// Cached handles for the `recovery.*` metrics.
#[derive(Debug, Clone)]
struct RecoveryMetrics {
    runs: Counter,
    recovered: Counter,
    escalated: Counter,
    steps_applied: Counter,
    steps_retried: Counter,
    fallbacks: Counter,
    verify_failures: Counter,
    mttr_us: LogHistogram,
}

impl RecoveryMetrics {
    fn new(obs: &Obs) -> RecoveryMetrics {
        RecoveryMetrics {
            runs: obs.counter("recovery.runs"),
            recovered: obs.counter("recovery.recovered"),
            escalated: obs.counter("recovery.escalated"),
            steps_applied: obs.counter("recovery.steps_applied"),
            steps_retried: obs.counter("recovery.steps_retried"),
            fallbacks: obs.counter("recovery.fallbacks"),
            verify_failures: obs.counter("recovery.verify_failures"),
            mttr_us: obs.log_histogram("recovery.mttr_us"),
        }
    }
}

/// The recovery executor. One executor serves many runs against one cloud.
#[derive(Debug, Clone)]
pub struct RecoveryExecutor {
    api: ConsistentApi,
    wait_api: ConsistentApi,
    library: PlanLibrary,
    config: RecoveryConfig,
    storage: LogStorage,
    metrics: RecoveryMetrics,
}

impl RecoveryExecutor {
    /// Builds an executor appending its operation log to `storage`.
    pub fn new(cloud: Cloud, storage: LogStorage, config: RecoveryConfig) -> RecoveryExecutor {
        let metrics = RecoveryMetrics::new(cloud.obs());
        RecoveryExecutor {
            api: ConsistentApi::new(cloud.clone(), config.step_policy.clone()),
            wait_api: ConsistentApi::new(cloud, config.wait_policy.clone()),
            library: PlanLibrary::new(),
            config,
            storage,
            metrics,
        }
    }

    /// The plan library this executor selects from.
    pub fn library(&self) -> &PlanLibrary {
        &self.library
    }

    fn now(&self) -> SimTime {
        self.api.cloud().clock().now()
    }

    /// Executes the recovery for one diagnosed root cause: plan selection,
    /// step execution with bounded retries, closed-loop verification, and
    /// the fallback/escalation ladder. Always returns a terminal run —
    /// escalations are explicit, never dropped. The plan is staged cold
    /// (see [`RecoveryConfig::stage_latency`]); the fast path avoids that
    /// cost via [`RecoveryExecutor::recover_prepared`].
    pub fn recover(&self, req: &RecoveryRequest) -> RecoveryRun {
        self.recover_inner(req, None, false)
    }

    /// Like [`recover`](RecoveryExecutor::recover), but consumes a plan
    /// pre-staged while the diagnosis was still walking the fault tree,
    /// provided the speculation matches the confirmed root cause — then
    /// the winning plan starts executing with zero staging latency. A
    /// stale or missing pre-stage falls back to cold staging.
    pub fn recover_prepared(
        &self,
        req: &RecoveryRequest,
        prepared: Option<&PreparedPlan>,
    ) -> RecoveryRun {
        match prepared {
            Some(p) if p.root_cause == req.root_cause => {
                self.recover_inner(req, Some(p.plan.clone()), false)
            }
            _ => self.recover_inner(req, None, false),
        }
    }

    /// Runs an explicit plan instead of consulting the library — the
    /// dispatcher's operation-end review uses this with a step-less
    /// [`RecoveryPlan::confirm_resolved`] plan. No staging cost: the plan
    /// is already instantiated. Verification is *patient* (the long
    /// convergence policy): the review gives the environment the same
    /// settling window the repair plans' wait-steps get, since a group
    /// still relaunching instances at operation end is not yet a failure.
    pub fn recover_with(&self, req: &RecoveryRequest, plan: RecoveryPlan) -> RecoveryRun {
        self.recover_inner(req, Some(plan), true)
    }

    fn recover_inner(
        &self,
        req: &RecoveryRequest,
        staged: Option<RecoveryPlan>,
        patient: bool,
    ) -> RecoveryRun {
        let obs = self.api.cloud().obs().clone();
        self.metrics.runs.incr();
        let started_at = self.now();
        let start_event = match req.parent_event {
            Some(parent) => obs.event_under(parent, "recovery.start", &req.root_cause),
            None => obs.event("recovery.start", &req.root_cause),
        };
        start_event.attr("task", &req.task_id);
        // Everything the run does — repair calls, consistent-layer
        // retries, verification — chains under the start event.
        let _scope = obs.events().scope(Some(start_event.id()));

        let mut run = RecoveryRun {
            task_id: req.task_id.clone(),
            root_cause: req.root_cause.clone(),
            outcome: RecoveryOutcome::Escalated {
                to_operator: true,
                reason: "not executed".to_string(),
            },
            plans_tried: Vec::new(),
            steps: Vec::new(),
            verifications: Vec::new(),
            detected_at: req.detected_at,
            started_at,
            finished_at: started_at,
            phases: RecoveryPhases::default(),
            env: req.env.clone(),
            log: Vec::new(),
        };
        let mut seq = 0u32;
        // How far the actual (sequential) clock runs ahead of the modeled
        // parallel timeline; every log line and record is stamped on the
        // modeled timeline.
        let mut lag = SimDuration::ZERO;

        self.log(
            &mut run,
            &mut seq,
            lag,
            Severity::Info,
            format!(
                "Started recovery task {} for root cause {}: {}",
                req.task_id, req.root_cause, req.description
            ),
        );

        let mut next = match staged {
            Some(plan) => Some(plan),
            None => {
                let plan = self
                    .library
                    .plan_for(&req.root_cause, &req.env, req.instance.as_ref());
                if plan.is_some() {
                    // Cold staging: resolve parameters, check preconditions
                    // and warm the API handles — the latency speculative
                    // pre-staging eliminates.
                    self.api.cloud().clock().advance(self.config.stage_latency);
                    run.phases.staging = self.config.stage_latency;
                }
                plan
            }
        };
        if next.is_none() {
            let reason = format!("no recovery plan mapped for root cause {}", req.root_cause);
            self.escalate(&mut run, &mut seq, lag, reason);
            self.finish(&obs, &mut run, lag);
            return run;
        }

        while let Some(plan) = next.take() {
            run.plans_tried.push(plan.id.clone());
            self.log(
                &mut run,
                &mut seq,
                lag,
                Severity::Info,
                format!(
                    "Selected recovery plan {} with {} step(s)",
                    plan.id,
                    plan.steps.len()
                ),
            );
            obs.event("recovery.plan", &plan.id)
                .attr("steps", plan.steps.len());

            match self.run_steps(&plan, req, &mut run, &mut seq, &mut lag) {
                Err((step_name, error)) => {
                    if let Some(fallback) = plan.fallback {
                        self.metrics.fallbacks.incr();
                        next = Some(*fallback);
                    } else {
                        let reason = format!(
                            "step {step_name} of plan {} exhausted its retry budget: {error}",
                            plan.id
                        );
                        self.escalate(&mut run, &mut seq, lag, reason);
                        break;
                    }
                }
                Ok(()) => {
                    // Closed-loop verification: re-evaluate the plan's
                    // assertions through the same assertion machinery that
                    // detected the fault.
                    let verify_started = self.now();
                    let failing = self.verify(&plan, &req.env, &mut run, patient);
                    run.phases.verification += self.now().duration_since(verify_started);
                    let verify_event = obs.event("recovery.verify", &plan.id);
                    verify_event.attr("checked", plan.verify.len());
                    verify_event.attr("failing", failing.len());
                    if failing.is_empty() {
                        self.log(
                            &mut run,
                            &mut seq,
                            lag,
                            Severity::Info,
                            format!(
                                "Re-checked {} assertion(s) after plan {}: all passed",
                                plan.verify.len(),
                                plan.id
                            ),
                        );
                        self.log(
                            &mut run,
                            &mut seq,
                            lag,
                            Severity::Info,
                            format!(
                                "Recovery task {} completed; root cause {} repaired",
                                req.task_id, req.root_cause
                            ),
                        );
                        run.outcome = RecoveryOutcome::Recovered;
                        break;
                    }
                    self.metrics.verify_failures.incr();
                    self.log(
                        &mut run,
                        &mut seq,
                        lag,
                        Severity::Warn,
                        format!(
                            "Re-checked {} assertion(s) after plan {}: {} still failing ({})",
                            plan.verify.len(),
                            plan.id,
                            failing.len(),
                            failing.join(", ")
                        ),
                    );
                    if let Some(fallback) = plan.fallback {
                        self.metrics.fallbacks.incr();
                        next = Some(*fallback);
                    } else {
                        let reason = format!(
                            "verification failed after plan {}: {} still failing",
                            plan.id,
                            failing.join(", ")
                        );
                        self.escalate(&mut run, &mut seq, lag, reason);
                        break;
                    }
                }
            }
        }

        self.finish(&obs, &mut run, lag);
        run
    }

    /// Runs the plan's steps on a dependency-graph schedule: steps whose
    /// resource footprints (see [`footprint`]) are disjoint run on
    /// concurrent modeled lanes of the virtual clock, while execution
    /// itself stays sequential in deterministic (ready-time, step-index)
    /// order — same seed, same transcript. Per-step timeout/backoff
    /// semantics are unchanged; each step's log lines and records are
    /// stamped on its lane, and `lag` tracks how far the sequential clock
    /// has run ahead of the modeled makespan. Returns the failing step and
    /// error when a budget is exhausted.
    fn run_steps(
        &self,
        plan: &RecoveryPlan,
        req: &RecoveryRequest,
        run: &mut RecoveryRun,
        seq: &mut u32,
        lag: &mut SimDuration,
    ) -> Result<(), (String, String)> {
        let base = rewind(self.now(), *lag);
        let n = plan.steps.len();
        let mut model_finish: Vec<Option<SimTime>> = vec![None; n];
        let mut makespan = base;
        for _ in 0..n {
            // Pick the lowest (ready-time, index) step whose conflicting
            // predecessors (earlier plan index, intersecting footprint)
            // have all finished.
            let mut next: Option<(SimTime, usize)> = None;
            for i in 0..n {
                if model_finish[i].is_some() {
                    continue;
                }
                let mut ready = base;
                let mut eligible = true;
                for (j, finish) in model_finish.iter().enumerate().take(i) {
                    if conflicts(&plan.steps[j], &plan.steps[i]) {
                        match finish {
                            Some(f) => ready = ready.max(*f),
                            None => {
                                eligible = false;
                                break;
                            }
                        }
                    }
                }
                if eligible && next.is_none_or(|(t, k)| (ready, i) < (t, k)) {
                    next = Some((ready, i));
                }
            }
            let (ready, idx) = next.expect("an unexecuted step is always eligible");
            let step = &plan.steps[idx];
            let name = step.name();
            // This step's lane starts at `ready` on the modeled timeline.
            *lag = self.now().duration_since(ready);
            let mut attempts = 0u32;
            let finished = loop {
                attempts += 1;
                match self.execute_step(step, req) {
                    Ok(detail) => {
                        self.metrics.steps_applied.incr();
                        let at = rewind(self.now(), *lag);
                        run.steps.push(StepRecord {
                            plan: plan.id.clone(),
                            step: name.clone(),
                            attempts,
                            ok: true,
                            detail: detail.clone(),
                            at,
                        });
                        let step_event = self.api.cloud().obs().event("recovery.step", &name);
                        step_event.attr("plan", &plan.id);
                        step_event.attr("attempts", attempts);
                        self.log(
                            run,
                            seq,
                            *lag,
                            Severity::Info,
                            format!("Applied recovery step {name}: {detail}"),
                        );
                        break at;
                    }
                    Err(error) if attempts < self.config.max_step_attempts => {
                        self.metrics.steps_retried.incr();
                        // Deliberately phrased to stay outside the
                        // relevance patterns: retries are noise to the
                        // recovery process model.
                        self.log(
                            run,
                            seq,
                            *lag,
                            Severity::Warn,
                            format!(
                                "Recovery attempt {attempts} of step {name} failed: {error}; \
                                 backing off"
                            ),
                        );
                    }
                    Err(error) => {
                        let at = rewind(self.now(), *lag);
                        run.steps.push(StepRecord {
                            plan: plan.id.clone(),
                            step: name.clone(),
                            attempts,
                            ok: false,
                            detail: error.clone(),
                            at,
                        });
                        self.log(
                            run,
                            seq,
                            *lag,
                            Severity::Warn,
                            format!(
                                "Recovery plan {} abandoned: step {name} failed after \
                                 {attempts} attempt(s): {error}",
                                plan.id
                            ),
                        );
                        makespan = makespan.max(at);
                        run.phases.repair += makespan.duration_since(base);
                        *lag = self.now().duration_since(makespan);
                        return Err((name, error));
                    }
                }
            };
            model_finish[idx] = Some(finished);
            makespan = makespan.max(finished);
        }
        run.phases.repair += makespan.duration_since(base);
        *lag = self.now().duration_since(makespan);
        Ok(())
    }

    /// Re-evaluates the plan's verification assertions; returns the keys
    /// still failing. `patient` swaps in the long convergence policy
    /// (operation-end reviews wait out in-flight relaunches).
    fn verify(
        &self,
        plan: &RecoveryPlan,
        env: &ExpectedEnv,
        run: &mut RecoveryRun,
        patient: bool,
    ) -> Vec<String> {
        let api = if patient { &self.wait_api } else { &self.api };
        let mut failing = Vec::new();
        for assertion in &plan.verify {
            let passed = matches!(assertion.evaluate(api, env), AssertionOutcome::Passed);
            run.verifications.push(VerifyRecord {
                key: assertion.key().to_string(),
                passed,
            });
            if !passed {
                failing.push(assertion.key().to_string());
            }
        }
        failing
    }

    fn escalate(&self, run: &mut RecoveryRun, seq: &mut u32, lag: SimDuration, reason: String) {
        self.log(
            run,
            seq,
            lag,
            Severity::Error,
            format!(
                "Recovery task {} escalated to operator: {reason}",
                run.task_id
            ),
        );
        run.outcome = RecoveryOutcome::Escalated {
            to_operator: true,
            reason,
        };
    }

    /// Stamps the terminal state: outcome event, outcome counters, MTTR.
    fn finish(&self, obs: &Obs, run: &mut RecoveryRun, lag: SimDuration) {
        run.finished_at = rewind(self.now(), lag);
        let outcome_event = obs.event("recovery.outcome", run.outcome.tag());
        outcome_event.attr("task", &run.task_id);
        outcome_event.attr("cause", &run.root_cause);
        match &run.outcome {
            RecoveryOutcome::Recovered => {
                self.metrics.recovered.incr();
                if let Some(mttr) = run.mttr() {
                    outcome_event.attr("mttr_ms", mttr.as_millis());
                    self.metrics.mttr_us.record(mttr.as_micros());
                }
            }
            RecoveryOutcome::Escalated { reason, .. } => {
                self.metrics.escalated.incr();
                outcome_event.attr("reason", reason);
            }
        }
    }

    /// Emits one Asgard-style log line for the recovery's own process
    /// model: collected on the run (for conformance checking) and appended
    /// to the shared operation log. Stamped on the modeled parallel
    /// timeline (`lag` behind the sequential clock).
    fn log(
        &self,
        run: &mut RecoveryRun,
        seq: &mut u32,
        lag: SimDuration,
        severity: Severity,
        message: String,
    ) {
        *seq += 1;
        let event = LogEvent::new(rewind(self.now(), lag), "recovery.log", message)
            .with_type("recovery")
            .with_severity(severity)
            .with_field("taskid", run.task_id.clone())
            .with_field("seq", seq.to_string());
        run.log.push(event.clone());
        self.storage.append(event);
    }

    /// Executes one step through the consistent API layer. Returns a
    /// human-readable success detail, or the error that exhausted the
    /// call's own retry budget.
    fn execute_step(&self, step: &RecoveryStep, req: &RecoveryRequest) -> Result<String, String> {
        let env = &req.env;
        match step {
            RecoveryStep::RepairLaunchConfig => {
                let name = env.launch_config.clone();
                // Delete the corrupted configuration (tolerating a repair
                // retry that already removed it), then re-create it under
                // the same name from the expected values.
                match self.api.execute(|c| c.delete_launch_config(&name)) {
                    Ok(()) | Err(ConsistentError::Api(ApiError::NotFound { .. })) => {}
                    Err(e) => return Err(e.to_string()),
                }
                self.api
                    .execute(|c| {
                        c.create_launch_config(
                            name.to_string(),
                            env.expected_ami.clone(),
                            env.expected_instance_type.clone(),
                            env.expected_key_pair.clone(),
                            env.expected_security_group.clone(),
                        )
                    })
                    .map_err(|e| e.to_string())?;
                self.api
                    .execute(|c| {
                        c.update_asg(
                            &env.asg,
                            AsgUpdate {
                                launch_config: Some(name.clone()),
                                ..AsgUpdate::default()
                            },
                        )
                    })
                    .map_err(|e| e.to_string())?;
                Ok(format!(
                    "rolled launch configuration {name} back to the expected configuration"
                ))
            }
            RecoveryStep::SwitchLaunchConfig => {
                let fresh =
                    pod_cloud::LaunchConfigName::new(format!("{}-recovery", env.launch_config));
                // A retried switch may find the replacement half-created.
                match self.api.execute(|c| c.delete_launch_config(&fresh)) {
                    Ok(()) | Err(ConsistentError::Api(ApiError::NotFound { .. })) => {}
                    Err(e) => return Err(e.to_string()),
                }
                self.api
                    .execute(|c| {
                        c.create_launch_config(
                            fresh.to_string(),
                            env.expected_ami.clone(),
                            env.expected_instance_type.clone(),
                            env.expected_key_pair.clone(),
                            env.expected_security_group.clone(),
                        )
                    })
                    .map_err(|e| e.to_string())?;
                self.api
                    .execute(|c| {
                        c.update_asg(
                            &env.asg,
                            AsgUpdate {
                                launch_config: Some(fresh.clone()),
                                ..AsgUpdate::default()
                            },
                        )
                    })
                    .map_err(|e| e.to_string())?;
                Ok(format!(
                    "switched {} to replacement launch configuration {fresh}",
                    env.asg
                ))
            }
            RecoveryStep::RestoreResource(kind) => {
                self.restore_resource(*kind, env)?;
                Ok(format!(
                    "restored availability of the expected {}",
                    kind.label()
                ))
            }
            RecoveryStep::ReregisterInstances => {
                let instances = self.list_instances(env)?;
                let lost: Vec<InstanceId> = instances
                    .iter()
                    .filter(|i| i.state == InstanceState::InService && !i.registered_with_elb)
                    .map(|i| i.id.clone())
                    .collect();
                for id in &lost {
                    self.api
                        .execute(|c| c.register_with_elb(&env.elb, id))
                        .map_err(|e| e.to_string())?;
                }
                Ok(format!(
                    "re-registered {} instance(s) with load balancer {}",
                    lost.len(),
                    env.elb
                ))
            }
            RecoveryStep::ReplaceCorruptedInstances => {
                let instances = self.list_instances(env)?;
                // Fault-scoped: only instances the corruption actually
                // produced — launched from the expected launch
                // configuration yet deviating from it. Instances still on
                // an older configuration belong to the running operation's
                // normal replacement churn and are left alone.
                let corrupted: Vec<InstanceId> = instances
                    .iter()
                    .filter(|i| is_corrupted(i, env))
                    .map(|i| i.id.clone())
                    .collect();
                for id in &corrupted {
                    // Deregistration is best-effort: the instance may never
                    // have registered, or the balancer may be the fault.
                    let _ = self.api.execute(|c| c.deregister_from_elb(&env.elb, id));
                    self.api
                        .execute(|c| c.terminate_instance(id, false))
                        .map_err(|e| e.to_string())?;
                }
                Ok(format!(
                    "terminated {} corrupted instance(s) for relaunch from the repaired \
                     configuration",
                    corrupted.len()
                ))
            }
            RecoveryStep::WaitLaunchConfigSettled => {
                self.wait_api
                    .read_until(
                        |c| c.describe_asg_instances(&env.asg),
                        |instances| !instances.iter().any(|i| is_corrupted(i, env)),
                    )
                    .map_err(|e| e.to_string())?;
                Ok(format!(
                    "no active instance from launch configuration {} deviates from the expected \
                     configuration",
                    env.launch_config
                ))
            }
            RecoveryStep::TerminateInstance(id) => {
                self.api
                    .execute(|c| c.terminate_instance(id, false))
                    .map_err(|e| e.to_string())?;
                self.wait_api
                    .read_until(
                        |c| c.describe_instance(id),
                        |i| {
                            matches!(
                                i.state,
                                InstanceState::Terminating | InstanceState::Terminated
                            )
                        },
                    )
                    .map_err(|e| e.to_string())?;
                Ok(format!("re-issued terminate for instance {id}"))
            }
            RecoveryStep::RegisterInstanceWithElb(id) => {
                self.api
                    .execute(|c| c.register_with_elb(&env.elb, id))
                    .map_err(|e| e.to_string())?;
                Ok(format!(
                    "registered instance {id} with load balancer {}",
                    env.elb
                ))
            }
        }
    }

    /// Flips the resource back to available (operator-credential action,
    /// still metered through the consistent layer) and waits until reads
    /// observe it.
    fn restore_resource(&self, kind: ResourceKind, env: &ExpectedEnv) -> Result<(), String> {
        match kind {
            ResourceKind::Ami => {
                self.api
                    .execute(|c| {
                        c.admin_set_ami_available(&env.expected_ami, true);
                        Ok(())
                    })
                    .map_err(|e| e.to_string())?;
                self.api
                    .read_until(|c| c.describe_ami(&env.expected_ami), |a| a.available)
                    .map_err(|e| e.to_string())?;
            }
            ResourceKind::KeyPair => {
                self.api
                    .execute(|c| {
                        c.admin_set_key_pair_available(&env.expected_key_pair, true);
                        Ok(())
                    })
                    .map_err(|e| e.to_string())?;
                self.api
                    .read_until(
                        |c| c.describe_key_pair(&env.expected_key_pair),
                        |k| k.available,
                    )
                    .map_err(|e| e.to_string())?;
            }
            ResourceKind::SecurityGroup => {
                self.api
                    .execute(|c| {
                        c.admin_set_security_group_available(&env.expected_security_group, true);
                        Ok(())
                    })
                    .map_err(|e| e.to_string())?;
                self.api
                    .read_until(
                        |c| c.describe_security_group(&env.expected_security_group),
                        |s| s.available,
                    )
                    .map_err(|e| e.to_string())?;
            }
            ResourceKind::Elb => {
                self.api
                    .execute(|c| {
                        c.admin_set_elb_available(&env.elb, true);
                        Ok(())
                    })
                    .map_err(|e| e.to_string())?;
                self.api
                    .read_until(|c| c.describe_elb(&env.elb), |e| e.available)
                    .map_err(|e| e.to_string())?;
            }
        }
        Ok(())
    }

    fn list_instances(&self, env: &ExpectedEnv) -> Result<Vec<Instance>, String> {
        self.api
            .execute(|c| c.describe_asg_instances(&env.asg))
            .map_err(|e| e.to_string())
    }
}

/// Whether an instance matches the expected configuration (version and
/// every launch parameter).
fn matches_env(instance: &Instance, env: &ExpectedEnv) -> bool {
    instance.version == env.expected_version
        && instance.ami == env.expected_ami
        && instance.key_pair == env.expected_key_pair
        && instance.security_group == env.expected_security_group
        && instance.instance_type == env.expected_instance_type
}

/// Whether an instance was corrupted by the fault under repair: active,
/// launched from the expected launch configuration, yet deviating from the
/// expected configuration.
fn is_corrupted(instance: &Instance, env: &ExpectedEnv) -> bool {
    instance.state.is_active()
        && instance.launch_config.as_ref() == Some(&env.launch_config)
        && !matches_env(instance, env)
}

/// The cloud resources a step reads or mutates — its dependency footprint
/// for the parallel scheduler. Two steps conflict (keep their plan order)
/// iff their footprints intersect; disjoint steps run on concurrent
/// modeled lanes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StepResource {
    /// The launch-configuration object itself.
    LaunchConfig,
    /// The ASG's configuration: its launch-config pointer and capacity.
    /// Shared by configuration repair and instance replacement, which
    /// keeps "fix the configuration" strictly before "relaunch from it".
    AsgConfig,
    /// The corrupted-instance set (see [`is_corrupted`]).
    CorruptedInstances,
    /// The healthy in-service instances.
    HealthyInstances,
    /// The expected machine image.
    Ami,
    /// The expected key pair.
    KeyPair,
    /// The expected security group.
    SecurityGroup,
    /// The load balancer. Best-effort deregistration of corrupted
    /// instances commutes with balancer work, so
    /// [`RecoveryStep::ReplaceCorruptedInstances`] deliberately does not
    /// claim it.
    Elb,
}

fn footprint(step: &RecoveryStep) -> &'static [StepResource] {
    use StepResource as R;
    match step {
        RecoveryStep::RepairLaunchConfig | RecoveryStep::SwitchLaunchConfig => {
            &[R::LaunchConfig, R::AsgConfig]
        }
        RecoveryStep::RestoreResource(ResourceKind::Ami) => &[R::Ami],
        RecoveryStep::RestoreResource(ResourceKind::KeyPair) => &[R::KeyPair],
        RecoveryStep::RestoreResource(ResourceKind::SecurityGroup) => &[R::SecurityGroup],
        RecoveryStep::RestoreResource(ResourceKind::Elb) => &[R::Elb],
        RecoveryStep::ReplaceCorruptedInstances => &[R::AsgConfig, R::CorruptedInstances],
        RecoveryStep::WaitLaunchConfigSettled => &[R::AsgConfig, R::CorruptedInstances],
        RecoveryStep::ReregisterInstances => &[R::Elb, R::HealthyInstances],
        RecoveryStep::TerminateInstance(_) => &[R::CorruptedInstances],
        RecoveryStep::RegisterInstanceWithElb(_) => &[R::Elb, R::HealthyInstances],
    }
}

fn conflicts(a: &RecoveryStep, b: &RecoveryStep) -> bool {
    footprint(a).iter().any(|r| footprint(b).contains(r))
}

/// Maps a sequential-clock instant back onto the modeled parallel
/// timeline.
fn rewind(t: SimTime, lag: SimDuration) -> SimTime {
    SimTime::from_micros(t.as_micros().saturating_sub(lag.as_micros()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pod_cloud::{CloudConfig, LaunchConfigUpdate};
    use pod_sim::{Clock, SimRng};

    use crate::monitor;

    /// A two-instance group behind a load balancer, matching the
    /// fault-tree test environment. Returns the cloud and the expectation.
    fn setup(seed: u64, elb_available: bool) -> (Cloud, ExpectedEnv) {
        let cloud = Cloud::new(
            Clock::new(),
            SimRng::seed_from(seed),
            CloudConfig {
                stale_read_prob: 0.0,
                ..CloudConfig::default()
            },
        );
        let ami = cloud.admin_create_ami("app", "2.0");
        let sg = cloud.admin_create_security_group("web", &[80]);
        let kp = cloud.admin_create_key_pair("prod");
        let elb = cloud.admin_create_elb("front");
        if !elb_available {
            cloud.admin_set_elb_available(&elb, false);
        }
        let lc =
            cloud.admin_create_launch_config("lc", ami.clone(), "m1.small", kp.clone(), sg.clone());
        let asg = cloud.admin_create_asg("g", lc.clone(), 1, 10, 2, Some(elb.clone()));
        let env = ExpectedEnv {
            asg,
            elb,
            launch_config: lc,
            expected_ami: ami,
            expected_version: "2.0".into(),
            expected_key_pair: kp,
            expected_security_group: sg,
            expected_instance_type: "m1.small".into(),
            expected_count: 2,
        };
        (cloud, env)
    }

    fn request(env: &ExpectedEnv, cause: &str, instance: Option<InstanceId>) -> RecoveryRequest {
        RecoveryRequest {
            task_id: "run-1-r0".to_string(),
            root_cause: cause.to_string(),
            description: format!("diagnosed {cause}"),
            detected_at: SimTime::ZERO,
            instance,
            env: env.clone(),
            parent_event: None,
        }
    }

    fn executor(cloud: &Cloud) -> RecoveryExecutor {
        RecoveryExecutor::new(cloud.clone(), LogStorage::new(), RecoveryConfig::default())
    }

    #[test]
    fn repairs_a_corrupted_launch_config_and_verifies() {
        let (cloud, env) = setup(21, true);
        let old = cloud.admin_create_ami("app-old", "1.0");
        cloud.admin_update_launch_config(
            &env.launch_config,
            LaunchConfigUpdate {
                ami: Some(old),
                ..LaunchConfigUpdate::default()
            },
        );

        let run = executor(&cloud).recover(&request(&env, "lc-wrong-ami", None));

        assert_eq!(run.outcome, RecoveryOutcome::Recovered);
        assert!(run.verifications.iter().all(|v| v.passed));
        assert_eq!(run.plans_tried, vec!["rollback-launch-config"]);
        assert!(run.mttr().is_some());
        let lc = cloud
            .admin_describe_launch_config(&env.launch_config)
            .expect("launch config re-created");
        assert_eq!(lc.ami, env.expected_ami);
        let report = monitor::conformance_check(&cloud, &run);
        assert!(report.fit, "recovered run must conform: {report:?}");
    }

    #[test]
    fn unmapped_cause_escalates_and_still_conforms() {
        let (cloud, env) = setup(22, true);
        let run = executor(&cloud).recover(&request(&env, "concurrent-scale-in", None));

        match &run.outcome {
            RecoveryOutcome::Escalated {
                to_operator,
                reason,
            } => {
                assert!(*to_operator);
                assert!(reason.contains("no recovery plan mapped"), "{reason}");
            }
            other => panic!("expected escalation, got {other:?}"),
        }
        assert!(run.plans_tried.is_empty());
        assert!(run.mttr().is_none());
        let report = monitor::conformance_check(&cloud, &run);
        assert!(report.fit, "escalated run must conform: {report:?}");
    }

    #[test]
    fn falls_back_to_restoring_the_elb_before_registering() {
        let (cloud, env) = setup(23, false);
        let instance = cloud
            .describe_asg_instances(&env.asg)
            .unwrap()
            .first()
            .expect("asg launched instances")
            .id
            .clone();

        let run = executor(&cloud).recover(&request(
            &env,
            "instance-not-registered",
            Some(instance.clone()),
        ));

        assert_eq!(run.outcome, RecoveryOutcome::Recovered);
        assert_eq!(
            run.plans_tried,
            vec!["register-instance", "restore-elb-and-register"]
        );
        assert!(
            cloud
                .describe_instance(&instance)
                .unwrap()
                .registered_with_elb
        );
        let report = monitor::conformance_check(&cloud, &run);
        assert!(report.fit, "fallback run must conform: {report:?}");
    }

    #[test]
    fn exhausted_step_without_fallback_escalates() {
        let (cloud, env) = setup(24, true);
        // A terminate plan for an instance that does not exist: the step
        // fails non-retryably, the plan has no fallback, the run must end
        // escalated — never dropped.
        let ghost = InstanceId::new("i-deadbeef");
        let run = executor(&cloud).recover(&request(&env, "instance-still-running", Some(ghost)));

        match &run.outcome {
            RecoveryOutcome::Escalated { reason, .. } => {
                assert!(reason.contains("terminate-instance"), "{reason}");
            }
            other => panic!("expected escalation, got {other:?}"),
        }
        assert_eq!(run.steps.iter().filter(|s| s.ok).count(), 0);
        let report = monitor::conformance_check(&cloud, &run);
        assert!(report.fit, "escalated run must conform: {report:?}");
    }

    #[test]
    fn same_seed_produces_byte_identical_transcripts() {
        let mut digests = Vec::new();
        for _ in 0..2 {
            let (cloud, env) = setup(25, true);
            let old = cloud.admin_create_ami("app-old", "1.0");
            cloud.admin_update_launch_config(
                &env.launch_config,
                LaunchConfigUpdate {
                    ami: Some(old),
                    ..LaunchConfigUpdate::default()
                },
            );
            let run = executor(&cloud).recover(&request(&env, "lc-wrong-ami", None));
            assert_eq!(run.outcome, RecoveryOutcome::Recovered);
            digests.push(run.digest());
        }
        assert_eq!(digests[0], digests[1], "recovery must be deterministic");
        assert!(digests[0].contains("Started recovery task run-1-r0"));
    }

    #[test]
    fn recovery_metrics_are_recorded() {
        let (cloud, env) = setup(26, true);
        executor(&cloud).recover(&request(&env, "concurrent-scale-in", None));
        let snapshot = cloud.obs().snapshot();
        assert_eq!(snapshot.counter("recovery.runs"), 1);
        assert_eq!(snapshot.counter("recovery.escalated"), 1);
        assert_eq!(snapshot.counter("recovery.recovered"), 0);
    }
}
