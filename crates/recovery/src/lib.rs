//! Automated remediation of diagnosed root causes — the "POD-Recovery"
//! follow-up the paper defers to future work.
//!
//! POD-Diagnosis walks a fault tree to a confirmed root cause and stops.
//! This crate closes the loop: a [`DiagnosisReport`] root cause becomes an
//! executed, verified repair. Four layers:
//!
//! 1. **Plan library** ([`PlanLibrary`]) — maps each diagnosable root cause
//!    in `pod_faulttree::library` (wrong launch-configuration values,
//!    unavailable resources, stuck or unregistered instances) to a
//!    parameterised [`RecoveryPlan`], instantiated from the diagnosis
//!    context ([`pod_assert::ExpectedEnv`] plus the offending instance).
//! 2. **Executor** ([`RecoveryExecutor`]) — runs plan steps against
//!    [`pod_cloud::Cloud`] through the consistent API layer
//!    ([`pod_assert::ConsistentApi`]): per-step timeout, exponential
//!    backoff, bounded retries. A step that exhausts its budget escalates
//!    to the plan's fallback, and finally to
//!    [`RecoveryOutcome::Escalated`] — never silently dropped.
//! 3. **Closed-loop verification** — after execution the plan's assertions
//!    are re-evaluated via `pod-assert`; only a passing re-check yields
//!    [`RecoveryOutcome::Recovered`].
//! 4. **Self-monitoring** ([`monitor`]) — recovery operations are
//!    themselves sporadic operations, so each run emits Asgard-style log
//!    lines for its own process model and `pod-core` conformance-checks
//!    the repair like any other operation. The whole arc (detection →
//!    diagnosis → recovery → verification) is one causal chain in
//!    `pod-obs`, under new `recovery.*` metrics.
//! 5. **Storm arbitration** ([`RecoveryStorm`]) — at gateway scale many
//!    tenants repair concurrently against one shared, throttled cloud
//!    API; the storm arbitrates their dispatchers over a bounded lane
//!    pool (`pod_gateway::AdmissionGate`), charges lane waits and
//!    throttle penalties to each tenant's MTTR, and sheds over-cap
//!    repairs to the end-of-operation sweep so nothing is dropped.
//!
//! Everything runs in virtual time: same seed ⇒ byte-identical recovery
//! transcripts ([`RecoveryRun::transcript`]).
//!
//! [`DiagnosisReport`]: pod_faulttree::DiagnosisReport

mod dispatch;
mod executor;
pub mod monitor;
mod plan;
mod storm;

pub use dispatch::RecoveryDispatcher;
pub use executor::{
    PreparedPlan, RecoveryConfig, RecoveryExecutor, RecoveryOutcome, RecoveryPhases,
    RecoveryRequest, RecoveryRun, StepRecord, VerifyRecord,
};
pub use monitor::{conformance_check, recovery_model, recovery_pod_config, ConformanceReport};
pub use plan::{PlanLibrary, RecoveryPlan, RecoveryStep, ResourceKind};
pub use storm::{RecoveryPath, RecoveryStorm, StormConfig, StormRecord, StormStats, TenantId};
