//! Self-monitoring of the recovery loop: recovery operations are
//! themselves sporadic operations, so each run is conformance-checked
//! against its own process model, exactly like the rolling upgrade it
//! repairs.
//!
//! The executor emits Asgard-style log lines ([`crate::RecoveryRun::log`]);
//! this module provides the process model, the transformation rules and a
//! ready-made [`pod_core::PodConfig`] so a fresh `PodEngine` can replay a
//! run and vouch that the repair followed its playbook.

use pod_assert::AssertionLibrary;
use pod_cloud::Cloud;
use pod_core::{PodConfig, PodEngine, SharedEnv};
use pod_log::{Boundary, LineRule, RuleBook};
use pod_process::{ProcessModel, ProcessModelBuilder};
use pod_sim::SimDuration;

use crate::executor::RecoveryRun;

/// The process id of the recovery operation.
pub const PROCESS_ID: &str = "recovery";

/// Activity names of the recovery process model.
pub mod steps {
    /// Recovery task started (operation boundary).
    pub const START: &str = "start-recovery";
    /// A plan was selected from the library (primary or fallback).
    pub const PLAN: &str = "select-recovery-plan";
    /// One plan step applied successfully.
    pub const STEP: &str = "apply-recovery-step";
    /// Closed-loop re-check of the failed assertions.
    pub const VERIFY: &str = "verify-recovery";
    /// Terminal: repaired and verified.
    pub const COMPLETED: &str = "recovery-completed";
    /// Terminal: handed to an operator.
    pub const ESCALATED: &str = "recovery-escalated";
}

/// Builds the recovery process model:
///
/// ```text
/// start → start-recovery → ⟨x⟩ → select-recovery-plan → ⟨loop⟩
///                            ↘ recovery-escalated (unmapped cause)
/// ⟨loop⟩ → apply-recovery-step → ⟨loop⟩           (next step)
/// ⟨loop⟩ → verify-recovery → ⟨out⟩
/// ⟨loop⟩ → recovery-escalated                     (step budget exhausted)
/// ⟨loop⟩ → select-recovery-plan                   (step failed, fallback)
/// ⟨out⟩  → recovery-completed | recovery-escalated | select-recovery-plan
/// ```
///
/// Every terminal run ends in exactly one of `recovery-completed` /
/// `recovery-escalated` — conformance checking rejects dropped runs.
pub fn recovery_model() -> ProcessModel {
    let mut b = ProcessModelBuilder::new(PROCESS_ID);
    let start = b.start();
    let t_start = b.task(steps::START);
    let g_start = b.exclusive_gateway();
    let t_plan = b.task(steps::PLAN);
    let g_loop = b.exclusive_gateway();
    let t_step = b.task(steps::STEP);
    let t_verify = b.task(steps::VERIFY);
    let g_out = b.exclusive_gateway();
    let t_completed = b.task(steps::COMPLETED);
    let t_escalated = b.task(steps::ESCALATED);
    let end = b.end();
    b.flow(start, t_start);
    b.flow(t_start, g_start);
    b.flow(g_start, t_plan);
    b.flow(g_start, t_escalated); // unmapped root cause
    b.flow(t_plan, g_loop);
    b.flow(g_loop, t_step);
    b.flow(t_step, g_loop); // step loop
    b.flow(g_loop, t_verify);
    b.flow(g_loop, t_escalated); // step budget exhausted, no fallback
    b.flow(g_loop, t_plan); // step budget exhausted, fallback → replan
    b.flow(t_verify, g_out);
    b.flow(g_out, t_completed); // re-check passed
    b.flow(g_out, t_escalated); // re-check failed, no fallback
    b.flow(g_out, t_plan); // re-check failed, fallback → replan
    b.flow(t_completed, end);
    b.flow(t_escalated, end);
    b.build().expect("the recovery model is valid")
}

/// Transformation rules matching the executor's log lines.
pub fn recovery_rules() -> RuleBook {
    let mut book = RuleBook::new();
    let mut rule = |activity: &str, boundary, patterns: &[&str]| {
        book.push(
            LineRule::new(activity, boundary, patterns).expect("recovery patterns are valid"),
        );
    };
    rule(
        steps::START,
        Boundary::Start,
        &[r"Started recovery task (?P<taskid>[\w-]+) for root cause (?P<cause>[\w-]+)"],
    );
    rule(
        steps::PLAN,
        Boundary::End,
        &[r"Selected recovery plan (?P<plan>[\w-]+) with \d+ step"],
    );
    rule(
        steps::STEP,
        Boundary::End,
        &[r"Applied recovery step (?P<step>[\w-]+): "],
    );
    rule(steps::VERIFY, Boundary::End, &[r"Re-checked \d+ assertion"]);
    rule(
        steps::COMPLETED,
        Boundary::End,
        &[r"Recovery task (?P<taskid>[\w-]+) completed"],
    );
    rule(
        steps::ESCALATED,
        Boundary::End,
        &[r"Recovery task (?P<taskid>[\w-]+) escalated to operator"],
    );
    book
}

/// Keep-patterns for the noise filter. Retry/abandon chatter from the
/// executor deliberately falls outside these.
pub fn relevance_patterns() -> Vec<&'static str> {
    vec![
        r"Started recovery task",
        r"Selected recovery plan",
        r"Applied recovery step",
        r"Re-checked \d+ assertion",
        r"Recovery task [\w-]+ completed",
        r"Recovery task [\w-]+ escalated",
    ]
}

/// A [`PodConfig`] for conformance-checking recovery runs. Timers are
/// effectively disabled (a recovery replay is a post-hoc audit, not live
/// detection) and diagnosis dispatch is immediate.
pub fn recovery_pod_config() -> PodConfig {
    let mut config = PodConfig::new(
        recovery_model(),
        recovery_rules(),
        AssertionLibrary::new(),
        pod_faulttree::rolling_upgrade_repository(true),
    );
    config.relevance_patterns = relevance_patterns().into_iter().map(String::from).collect();
    config.operation_start_pattern = r"Started recovery task".to_string();
    config.operation_end_pattern = r"Recovery task [\w-]+ (completed|escalated)".to_string();
    config.step_timeout = SimDuration::from_secs(86_400);
    config.periodic_interval = SimDuration::from_secs(86_400);
    config.diagnosis_dispatch_delay = SimDuration::ZERO;
    config
}

/// Verdict of replaying one recovery run against its process model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConformanceReport {
    /// The run followed the playbook: no conformance errors, no
    /// detections, and the trace reached the end event.
    pub fit: bool,
    /// Log events submitted to conformance checking.
    pub events: usize,
    /// Conformance errors (unfit / unclassified lines).
    pub errors: usize,
    /// Whether the trace reached a terminal activity.
    pub complete: bool,
}

/// Replays a finished recovery run through a fresh `PodEngine` against the
/// recovery process model — POD-Diagnosis monitoring its own repair.
pub fn conformance_check(cloud: &Cloud, run: &RecoveryRun) -> ConformanceReport {
    let storage = pod_log::LogStorage::new();
    let mut engine = PodEngine::new(
        cloud.clone(),
        storage,
        SharedEnv::new(run.env.clone()),
        recovery_pod_config(),
        run.task_id.clone(),
    )
    .expect("recovery monitor patterns are valid");
    engine.ingest_batch(run.log.iter().cloned());
    let summary = engine.finish();
    ConformanceReport {
        fit: summary.conformance_errors == 0
            && summary.trace_complete
            && summary.detections.is_empty(),
        events: summary.conformance_events,
        errors: summary.conformance_errors,
        complete: summary.trace_complete,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pod_process::{Conformance, ConformanceChecker};

    #[test]
    fn model_replays_the_recovered_arc() {
        let model = recovery_model();
        let mut checker = ConformanceChecker::new(&model);
        let trace = [
            steps::START,
            steps::PLAN,
            steps::STEP,
            steps::STEP,
            steps::STEP,
            steps::VERIFY,
            steps::COMPLETED,
        ];
        for act in trace {
            assert_eq!(checker.replay("t", act), Conformance::Fit, "at {act}");
        }
        assert!(checker.is_complete("t"));
    }

    #[test]
    fn model_replays_fallback_and_escalation_arcs() {
        let model = recovery_model();
        // Verification fails after the primary plan, the fallback plan's
        // step budget is exhausted, and the run escalates.
        let mut checker = ConformanceChecker::new(&model);
        let trace = [
            steps::START,
            steps::PLAN,
            steps::STEP,
            steps::VERIFY,
            steps::PLAN, // fallback after failed re-check
            steps::STEP,
            steps::ESCALATED,
        ];
        for act in trace {
            assert_eq!(checker.replay("t", act), Conformance::Fit, "at {act}");
        }
        assert!(checker.is_complete("t"));

        // Unmapped root cause: straight to escalation.
        let mut checker = ConformanceChecker::new(&model);
        for act in [steps::START, steps::ESCALATED] {
            assert_eq!(checker.replay("u", act), Conformance::Fit, "at {act}");
        }
        assert!(checker.is_complete("u"));
    }

    #[test]
    fn model_rejects_completion_without_verification() {
        let model = recovery_model();
        let mut checker = ConformanceChecker::new(&model);
        for act in [steps::START, steps::PLAN, steps::STEP] {
            checker.replay("t", act);
        }
        assert!(matches!(
            checker.replay("t", steps::COMPLETED),
            Conformance::Unfit { .. }
        ));
    }

    #[test]
    fn rules_match_executor_lines() {
        let rules = recovery_rules();
        let cases = [
            (
                "Started recovery task run-1-r0 for root cause lc-wrong-ami: launch config uses wrong AMI",
                steps::START,
            ),
            (
                "Selected recovery plan rollback-launch-config with 3 step(s)",
                steps::PLAN,
            ),
            (
                "Applied recovery step repair-launch-config: rolled launch configuration lc back",
                steps::STEP,
            ),
            (
                "Re-checked 2 assertion(s) after plan rollback-launch-config: all passed",
                steps::VERIFY,
            ),
            (
                "Re-checked 2 assertion(s) after plan rollback-launch-config: 1 still failing (asg-has-n-instances-with-version)",
                steps::VERIFY,
            ),
            (
                "Recovery task run-1-r0 completed; root cause lc-wrong-ami repaired",
                steps::COMPLETED,
            ),
            (
                "Recovery task run-1-r0 escalated to operator: no recovery plan mapped for root cause concurrent-scale-in",
                steps::ESCALATED,
            ),
        ];
        for (line, want) in cases {
            let m = rules.match_line(line);
            assert_eq!(
                m.as_ref().map(|m| m.activity.as_str()),
                Some(want),
                "line: {line}"
            );
        }
    }

    #[test]
    fn retry_chatter_is_noise() {
        let set = pod_regex::RegexSet::new(&relevance_patterns()).unwrap();
        for noise in [
            "Recovery attempt 1 of step wait-asg-steady failed: timed out; backing off",
            "Recovery plan register-instance abandoned: step register-instance-with-elb \
             failed after 2 attempt(s): service unavailable",
        ] {
            assert!(set.first_match(noise).is_none(), "matched noise: {noise}");
        }
        let op_end = pod_regex::Regex::new(&recovery_pod_config().operation_end_pattern).unwrap();
        assert!(op_end.is_match("Recovery task r-1 completed; root cause x repaired"));
        assert!(op_end.is_match("Recovery task r-1 escalated to operator: y"));
    }
}
