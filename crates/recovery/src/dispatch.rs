//! The recovery dispatcher: the fast-path glue between the engine's
//! detection hook and the executor.
//!
//! Three jobs, in incident order:
//!
//! 1. **Speculative pre-staging** — on a `Detected` notice it instantiates
//!    the plans of every still-plausible mapped root cause, so when the
//!    fault-tree walk confirms one, the winning plan starts with zero
//!    staging latency. Speculation is accounted for honestly in the
//!    `recovery.prestage.{staged,hit,waste,miss}` metrics.
//! 2. **Eager dispatch** — on a `Diagnosed` notice carrying a mapped root
//!    cause it executes the repair immediately, mid-operation, instead of
//!    waiting for the end-of-run sweep. Diagnoses without an actionable
//!    repair (no root cause identified, or a confirmed-benign concurrent
//!    operation) are queued for operation-end review instead: at the
//!    sweep they get a step-less `confirm-resolved` plan that re-checks
//!    the triggering assertion — pass means the condition resolved itself
//!    (recovered without paging anyone), fail escalates to the operator.
//! 3. **Dedup** — eager dispatch and the end-of-run sweep race on the
//!    same incidents; a handled-set keyed by detection index guarantees
//!    exactly one recovery per diagnosed detection, so
//!    `attempted == recovered + escalated` survives the race.

use std::collections::{HashMap, HashSet};

use pod_assert::{CloudAssertion, ExpectedEnv};
use pod_cloud::Cloud;
use pod_core::{Detection, EngineNotice, SharedEnv};
use pod_log::LogStorage;
use pod_obs::{Counter, Gauge};
use pod_sim::SimDuration;

use crate::executor::{
    PreparedPlan, RecoveryConfig, RecoveryExecutor, RecoveryRequest, RecoveryRun,
};
use crate::plan::RecoveryPlan;

/// Cached handles for the dispatcher's own metrics.
#[derive(Debug, Clone)]
struct DispatchMetrics {
    prestage_staged: Counter,
    prestage_hit: Counter,
    prestage_waste: Counter,
    prestage_miss: Counter,
    dedup: Counter,
    queue_depth: Gauge,
}

impl DispatchMetrics {
    fn new(cloud: &Cloud) -> DispatchMetrics {
        let obs = cloud.obs();
        DispatchMetrics {
            prestage_staged: obs.counter("recovery.prestage.staged"),
            prestage_hit: obs.counter("recovery.prestage.hit"),
            prestage_waste: obs.counter("recovery.prestage.waste"),
            prestage_miss: obs.counter("recovery.prestage.miss"),
            dedup: obs.counter("recovery.dispatch.dedup"),
            queue_depth: obs.gauge("recovery.queue.depth"),
        }
    }
}

/// The fast-path recovery dispatcher. Wire [`RecoveryDispatcher::on_notice`]
/// into `PodEngine::set_detection_hook` for eager dispatch, then call
/// [`RecoveryDispatcher::sweep`] with the run's detections after the
/// operation ends — the sweep recovers anything the eager path did not
/// handle (or everything, when no hook was installed) and reviews the
/// deferred incidents. Collect results with
/// [`RecoveryDispatcher::take_records`].
#[derive(Debug)]
pub struct RecoveryDispatcher {
    executor: RecoveryExecutor,
    cloud: Cloud,
    env: SharedEnv,
    trace_id: String,
    /// Pre-staged plans per detection index, awaiting the verdict.
    staged: HashMap<usize, Vec<PreparedPlan>>,
    /// Detection indices already dispatched (the dedup set).
    handled: HashSet<usize>,
    /// Diagnosed incidents without an actionable repair, queued for
    /// operation-end review.
    deferred: Vec<(usize, Detection)>,
    /// Finished runs, tagged with their detection index.
    records: Vec<(usize, RecoveryRun)>,
    metrics: DispatchMetrics,
}

impl RecoveryDispatcher {
    /// Builds a dispatcher executing repairs against `cloud` and logging
    /// to `storage`.
    pub fn new(
        cloud: Cloud,
        storage: LogStorage,
        env: SharedEnv,
        trace_id: impl Into<String>,
        config: RecoveryConfig,
    ) -> RecoveryDispatcher {
        RecoveryDispatcher {
            executor: RecoveryExecutor::new(cloud.clone(), storage, config),
            metrics: DispatchMetrics::new(&cloud),
            cloud,
            env,
            trace_id: trace_id.into(),
            staged: HashMap::new(),
            handled: HashSet::new(),
            deferred: Vec::new(),
            records: Vec::new(),
        }
    }

    /// Whether dispatching `detection` would execute an actual repair
    /// against the cloud API (its confirmed root cause is mapped in the
    /// plan library), as opposed to queueing a step-less operation-end
    /// review. Cross-tenant arbiters use this to charge admission lanes
    /// only for work that really contends for the shared backend.
    pub fn is_actionable(&self, detection: &Detection) -> bool {
        let (cause, _) = root_cause_of(detection);
        self.executor
            .library()
            .mapped_causes()
            .contains(&cause.as_str())
    }

    /// The engine-hook entry point: pre-stages plans on `Detected`,
    /// dispatches eagerly on `Diagnosed`.
    pub fn on_notice(&mut self, notice: &EngineNotice) {
        match notice {
            EngineNotice::Detected {
                detection_index,
                instance,
                dispatched,
                candidates,
                ..
            } => {
                if *dispatched {
                    self.prestage(*detection_index, candidates, instance.as_ref());
                }
            }
            EngineNotice::Diagnosed {
                detection_index,
                detection,
            } => {
                self.dispatch(*detection_index, detection, false);
            }
        }
    }

    /// Speculatively stages the plans of every mapped candidate cause
    /// while the diagnosis is still walking the tree.
    fn prestage(
        &mut self,
        detection_index: usize,
        candidates: &[String],
        instance: Option<&pod_cloud::InstanceId>,
    ) {
        let env = self.env.snapshot();
        let staged_at = self.cloud.clock().now();
        let plans: Vec<PreparedPlan> = candidates
            .iter()
            .filter_map(|cause| {
                self.executor
                    .library()
                    .plan_for(cause, &env, instance)
                    .map(|plan| PreparedPlan {
                        root_cause: cause.clone(),
                        plan,
                        staged_at,
                    })
            })
            .collect();
        if !plans.is_empty() {
            self.metrics.prestage_staged.add(plans.len() as u64);
            self.staged.insert(detection_index, plans);
            self.update_queue_depth();
        }
    }

    /// Dispatches one diagnosed detection exactly once (the dedup
    /// guarantee). `at_sweep` selects how unmapped/none causes are
    /// treated: deferred for review (eager path) or reviewed now (sweep).
    fn dispatch(&mut self, detection_index: usize, detection: &Detection, at_sweep: bool) {
        if !self.handled.insert(detection_index) {
            self.metrics.dedup.incr();
            return;
        }
        let staged = self.staged.remove(&detection_index);
        self.update_queue_depth();
        let (cause, description) = root_cause_of(detection);
        let mapped = self
            .executor
            .library()
            .mapped_causes()
            .contains(&cause.as_str());

        if mapped {
            // Prestage accounting: a hit uses the staged plan verbatim;
            // everything staged for the losing candidates was wasted work.
            let mut prepared = None;
            if let Some(plans) = staged {
                match plans.iter().position(|p| p.root_cause == cause) {
                    Some(i) => {
                        self.metrics.prestage_hit.incr();
                        self.metrics
                            .prestage_waste
                            .add(plans.len().saturating_sub(1) as u64);
                        prepared = plans.into_iter().nth(i);
                    }
                    None => {
                        self.metrics.prestage_miss.incr();
                        self.metrics.prestage_waste.add(plans.len() as u64);
                    }
                }
            }
            let req = self.request(detection_index, detection, &cause, &description);
            let mut run = self.executor.recover_prepared(&req, prepared.as_ref());
            stamp_phases(&mut run, detection);
            self.records.push((detection_index, run));
        } else if !at_sweep {
            // No actionable repair mid-operation: everything staged was
            // speculative waste; queue the incident for operation-end
            // review.
            if let Some(plans) = staged {
                self.metrics.prestage_miss.incr();
                self.metrics.prestage_waste.add(plans.len() as u64);
            }
            self.deferred.push((detection_index, detection.clone()));
            self.update_queue_depth();
        } else {
            if let Some(plans) = staged {
                self.metrics.prestage_miss.incr();
                self.metrics.prestage_waste.add(plans.len() as u64);
            }
            self.review(detection_index, detection, cause, description);
        }
    }

    /// Operation-end review of an incident without an actionable repair.
    ///
    /// Two cases, by what the diagnosis concluded:
    ///
    /// * **Confirmed-benign cause** (a concurrent operation by another
    ///   team, or shared-account capacity pressure): the incident is
    ///   explained — there is no fault, and the operation's own outcome
    ///   channel already reports whether the upgrade itself succeeded.
    ///   The review only confirms the interference masks no real
    ///   corruption (every instance from the operation's launch
    ///   configuration is consistent); paging an operator for another
    ///   team's acknowledged scale-in would be a false page.
    /// * **No cause identified**: re-check the assertion that raised the
    ///   incident. Passing means the condition resolved itself (a
    ///   transient) — recovered without paging anyone; still failing
    ///   escalates, because an unexplained, persistent violation needs a
    ///   human.
    fn review(
        &mut self,
        detection_index: usize,
        detection: &Detection,
        cause: String,
        description: String,
    ) {
        let env = self.env.snapshot();
        let verify = if is_benign_cause(&cause) {
            vec![CloudAssertion::LaunchConfigInstancesConsistent]
        } else {
            vec![confirm_assertion(&detection.key, &env)]
        };
        let plan = RecoveryPlan::confirm_resolved(
            format!("operation-end review of unrepaired incident ({cause}): {description}"),
            verify,
        );
        let req = self.request(detection_index, detection, &cause, &description);
        let mut run = self.executor.recover_with(&req, plan);
        stamp_phases(&mut run, detection);
        self.records.push((detection_index, run));
    }

    /// The end-of-run sweep: recovers every diagnosed detection the eager
    /// path did not handle (all of them when no hook was installed), then
    /// reviews the deferred incidents. Dedup makes this idempotent with
    /// respect to the eager path.
    pub fn sweep(&mut self, detections: &[Detection]) {
        for (i, d) in detections.iter().enumerate() {
            if d.diagnosis.is_none() {
                // Suppressed by the diagnosis cooldown — an identical
                // diagnosis just ran; nothing to recover.
                continue;
            }
            self.dispatch(i, d, true);
        }
        let deferred = std::mem::take(&mut self.deferred);
        for (i, d) in deferred {
            let (cause, description) = root_cause_of(&d);
            self.review(i, &d, cause, description);
        }
        self.update_queue_depth();
    }

    /// Drains the finished runs, ordered by detection index.
    pub fn take_records(&mut self) -> Vec<(usize, RecoveryRun)> {
        let mut records = std::mem::take(&mut self.records);
        records.sort_by_key(|(i, _)| *i);
        records
    }

    fn request(
        &self,
        detection_index: usize,
        detection: &Detection,
        cause: &str,
        description: &str,
    ) -> RecoveryRequest {
        RecoveryRequest {
            task_id: format!("{}-r{}", self.trace_id, detection_index),
            root_cause: cause.to_string(),
            description: description.to_string(),
            detected_at: detection.at,
            instance: detection.instance.clone(),
            env: self.env.snapshot(),
            parent_event: detection.event,
        }
    }

    fn update_queue_depth(&self) {
        self.metrics
            .queue_depth
            .set((self.staged.len() + self.deferred.len()) as i64);
    }
}

/// Whether a diagnosed root cause is a confirmed-benign one: a legitimate
/// operation by someone else, not a fault in this operation's domain.
/// These node ids come from `pod_faulttree::library`'s interference
/// branches and are deliberately unmapped in the plan library.
fn is_benign_cause(cause: &str) -> bool {
    matches!(
        cause,
        "concurrent-scale-in" | "concurrent-capacity-change" | "instance-limit-reached"
    )
}

/// The confirmed root cause of a diagnosed detection, or `("none", …)`
/// when the diagnosis excluded every candidate fault.
fn root_cause_of(detection: &Detection) -> (String, String) {
    detection
        .diagnosis
        .as_ref()
        .and_then(|report| report.root_causes.first())
        .map(|c| (c.node_id.clone(), c.description.clone()))
        .unwrap_or_else(|| ("none".to_string(), "no root cause identified".to_string()))
}

/// Fills the detection/diagnosis/staging-wait phase segments the executor
/// cannot know: detection → diagnosis start, the diagnosis itself, and any
/// gap between the verdict and the recovery start (zero on the eager path;
/// the whole sweep wait otherwise).
fn stamp_phases(run: &mut RecoveryRun, detection: &Detection) {
    if let Some(report) = &detection.diagnosis {
        run.phases.detection = report.started_at.duration_since(detection.at);
        run.phases.diagnosis = report.duration;
        let verdict_at = report.started_at + report.duration;
        run.phases.staging += run.started_at.duration_since(verdict_at);
    } else {
        run.phases.detection = run.started_at.duration_since(detection.at);
        run.phases.diagnosis = SimDuration::ZERO;
    }
}

/// Maps a detection's fault-tree key back to the assertion the
/// operation-end review re-checks.
fn confirm_assertion(key: &str, env: &ExpectedEnv) -> CloudAssertion {
    match key {
        "asg-desired-capacity" => CloudAssertion::AsgDesiredCapacity {
            count: env.expected_count,
        },
        "asg-active-count-at-least" => CloudAssertion::AsgActiveCountAtLeast {
            count: env.expected_count,
        },
        "asg-instance-count" => CloudAssertion::AsgInstanceCount {
            count: env.expected_count,
        },
        "asg-launch-config-correct" => CloudAssertion::AsgLaunchConfigCorrect,
        "launch-config-instances-consistent" => CloudAssertion::LaunchConfigInstancesConsistent,
        "ami-available" => CloudAssertion::AmiAvailable,
        "key-pair-available" => CloudAssertion::KeyPairAvailable,
        "security-group-available" => CloudAssertion::SecurityGroupAvailable,
        "elb-available" => CloudAssertion::ElbAvailable,
        // The master-tree key and anything unrecognised: the paper's
        // flagship whole-system assertion.
        _ => CloudAssertion::AsgHasInstancesWithVersion {
            count: env.expected_count,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pod_cloud::{CloudConfig, LaunchConfigUpdate};
    use pod_core::DetectionSource;
    use pod_faulttree::{DiagnosedCause, DiagnosisReport};
    use pod_sim::{Clock, SimRng};

    fn setup(seed: u64) -> (Cloud, ExpectedEnv) {
        let cloud = Cloud::new(
            Clock::new(),
            SimRng::seed_from(seed),
            CloudConfig {
                stale_read_prob: 0.0,
                ..CloudConfig::default()
            },
        );
        let ami = cloud.admin_create_ami("app", "2.0");
        let sg = cloud.admin_create_security_group("web", &[80]);
        let kp = cloud.admin_create_key_pair("prod");
        let elb = cloud.admin_create_elb("front");
        let lc =
            cloud.admin_create_launch_config("lc", ami.clone(), "m1.small", kp.clone(), sg.clone());
        let asg = cloud.admin_create_asg("g", lc.clone(), 1, 10, 2, Some(elb.clone()));
        let env = ExpectedEnv {
            asg,
            elb,
            launch_config: lc,
            expected_ami: ami,
            expected_version: "2.0".into(),
            expected_key_pair: kp,
            expected_security_group: sg,
            expected_instance_type: "m1.small".into(),
            expected_count: 2,
        };
        (cloud, env)
    }

    fn diagnosed(cloud: &Cloud, key: &str, cause: Option<&str>) -> Detection {
        let at = cloud.clock().now();
        Detection {
            at,
            source: DetectionSource::AssertionLog,
            description: format!("assertion {key} failed"),
            step: Some("update-launch-config".to_string()),
            key: key.to_string(),
            instance: None,
            diagnosis: Some(DiagnosisReport {
                root_causes: cause
                    .map(|c| {
                        vec![DiagnosedCause {
                            node_id: c.to_string(),
                            description: format!("confirmed {c}"),
                        }]
                    })
                    .unwrap_or_default(),
                stopped_at: Vec::new(),
                potential_faults: 4,
                excluded: 3,
                tests_run: 4,
                first_cause_after: Some(SimDuration::from_secs(2)),
                started_at: at + SimDuration::from_secs(5),
                duration: SimDuration::from_secs(3),
            }),
            event: None,
        }
    }

    /// Satellite (d): when the eager path and the end-of-run sweep race on
    /// the same incident, exactly one recovery runs, the duplicate is
    /// counted, and `attempted == recovered + escalated` holds.
    #[test]
    fn eager_and_sweep_dedup_to_one_recovery() {
        let (cloud, env) = setup(91);
        let old = cloud.admin_create_ami("app-old", "1.0");
        cloud.admin_update_launch_config(
            &env.launch_config,
            LaunchConfigUpdate {
                ami: Some(old),
                ..LaunchConfigUpdate::default()
            },
        );
        let shared = SharedEnv::new(env);
        let mut dispatcher = RecoveryDispatcher::new(
            cloud.clone(),
            LogStorage::new(),
            shared,
            "run-1",
            RecoveryConfig::default(),
        );

        let detection = diagnosed(&cloud, "asg-launch-config-correct", Some("lc-wrong-ami"));
        dispatcher.on_notice(&EngineNotice::Detected {
            detection_index: 0,
            at: detection.at,
            source: detection.source,
            key: detection.key.clone(),
            step: detection.step.clone(),
            instance: None,
            dispatched: true,
            candidates: vec!["lc-wrong-ami".to_string(), "ami-unavailable".to_string()],
        });
        dispatcher.on_notice(&EngineNotice::Diagnosed {
            detection_index: 0,
            detection: detection.clone(),
        });
        // The sweep races on the same incident; dedup must absorb it.
        dispatcher.sweep(std::slice::from_ref(&detection));

        let records = dispatcher.take_records();
        assert_eq!(records.len(), 1, "exactly one recovery per incident");
        let (idx, run) = &records[0];
        assert_eq!(*idx, 0);
        let recovered = (run.outcome == crate::RecoveryOutcome::Recovered) as usize;
        let escalated = matches!(run.outcome, crate::RecoveryOutcome::Escalated { .. }) as usize;
        assert_eq!(records.len(), recovered + escalated);
        assert_eq!(run.outcome, crate::RecoveryOutcome::Recovered);

        let obs = cloud.obs();
        assert_eq!(obs.counter("recovery.dispatch.dedup").get(), 1);
        assert_eq!(obs.counter("recovery.prestage.staged").get(), 2);
        assert_eq!(obs.counter("recovery.prestage.hit").get(), 1);
        assert_eq!(obs.counter("recovery.prestage.waste").get(), 1);
        assert_eq!(obs.gauge("recovery.queue.depth").get(), 0);
    }

    /// An eager prestage whose incident is ultimately unrepairable is all
    /// waste, and the incident is reviewed (not repaired) at the sweep.
    #[test]
    fn unmapped_diagnosis_defers_to_operation_end_review() {
        let (cloud, env) = setup(92);
        let shared = SharedEnv::new(env);
        let mut dispatcher = RecoveryDispatcher::new(
            cloud.clone(),
            LogStorage::new(),
            shared,
            "run-2",
            RecoveryConfig::default(),
        );

        let detection = diagnosed(&cloud, "asg-desired-capacity", Some("concurrent-scale-in"));
        dispatcher.on_notice(&EngineNotice::Diagnosed {
            detection_index: 0,
            detection: detection.clone(),
        });
        assert!(dispatcher.take_records().is_empty(), "deferred, not run");
        assert_eq!(cloud.obs().gauge("recovery.queue.depth").get(), 1);

        dispatcher.sweep(std::slice::from_ref(&detection));
        let records = dispatcher.take_records();
        assert_eq!(records.len(), 1);
        let run = &records[0].1;
        assert_eq!(run.plans_tried, vec!["confirm-resolved"]);
        // The desired-capacity expectation (2) is met by the healthy group,
        // so the review confirms the incident resolved itself.
        assert_eq!(run.outcome, crate::RecoveryOutcome::Recovered);
        assert_eq!(cloud.obs().counter("recovery.dispatch.dedup").get(), 1);
        assert_eq!(cloud.obs().gauge("recovery.queue.depth").get(), 0);
    }
}
