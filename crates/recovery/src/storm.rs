//! Recovery storms: cross-tenant repair arbitration under gateway load.
//!
//! PR 7's eager dispatch fires repairs mid-operation. At gateway scale
//! that means dozens of per-tenant dispatchers repairing *concurrently*
//! against what is operationally one shared, throttled cloud API. The
//! [`RecoveryStorm`] models exactly that contention, deterministically:
//!
//! * **Lane arbitration** — every actionable repair must pass the shared
//!   [`AdmissionGate`] (from `pod-gateway`), which bounds concurrent
//!   repairs to a fixed lane pool on the *gateway* clock. Queue waits are
//!   charged to the repairing tenant's own virtual clock, so MTTR-under-
//!   load honestly includes the time spent waiting for a lane.
//! * **Throttling** — when the grant overlaps more than `throttle_at`
//!   in-flight repairs, the shared API pushes back: a per-excess-repair
//!   penalty is added to the tenant's clock and the repair is counted in
//!   `recovery.storm.throttled` (exactly once).
//! * **Shed-to-sweep fallback** — a repair whose lane wait would exceed
//!   the cap is *deferred*, never dropped: its detection index is parked
//!   and the per-tenant dispatcher's end-of-operation sweep executes it on
//!   the quiet post-soak path. `recovered + escalated == attempted` holds
//!   across all paths.
//!
//! Storm pressure is visible on the gateway's observability handle:
//! `recovery.storm.{requests,admitted,throttled,deferred,swept}` counters
//! plus the `recovery.storm.concurrent` (in-flight lanes) and
//! `recovery.storm.queue_depth` (shed backlog) gauges — all of which the
//! flight recorder frames during a storm.
//!
//! Everything is arithmetic on virtual clocks: the same seed and the same
//! notice interleaving produce byte-identical recovery transcripts even
//! under maximal contention.

use std::collections::{BTreeMap, BTreeSet};

use pod_cloud::Cloud;
use pod_core::{Detection, EngineNotice, SharedEnv};
use pod_gateway::{Admission, AdmissionGate};
use pod_log::LogStorage;
use pod_obs::{Counter, Gauge, Obs};
use pod_sim::{Clock, SimDuration, SimTime};

use crate::dispatch::RecoveryDispatcher;
use crate::executor::{RecoveryConfig, RecoveryRun};

/// Contention knobs of a recovery storm.
#[derive(Debug, Clone)]
pub struct StormConfig {
    /// Concurrent repair lanes against the shared cloud API. Default 2.
    pub lanes: usize,
    /// Maximum time a repair may queue for a lane before it is shed to
    /// the end-of-operation sweep. Default 5s (virtual).
    pub max_lane_wait: SimDuration,
    /// In-flight repairs the shared API serves at full speed; every
    /// repair overlapping more than this is throttled. Default 1.
    pub throttle_at: usize,
    /// Added delay per in-flight repair beyond
    /// [`throttle_at`](StormConfig::throttle_at). Default 3s (virtual).
    pub throttle_penalty: SimDuration,
}

impl Default for StormConfig {
    fn default() -> StormConfig {
        StormConfig {
            lanes: 2,
            max_lane_wait: SimDuration::from_secs(5),
            throttle_at: 1,
            throttle_penalty: SimDuration::from_secs(3),
        }
    }
}

/// Handle to one registered tenant (one operation's dispatcher).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantId(usize);

impl TenantId {
    /// The registration index (0-based, in registration order).
    pub fn index(self) -> usize {
        self.0
    }
}

/// How a recovery run reached the executor during a storm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryPath {
    /// Dispatched eagerly through an admission-gate lane.
    Eager {
        /// Whether the shared API throttled the repair.
        throttled: bool,
        /// Lane queue wait plus throttle penalty charged to the tenant.
        delayed: SimDuration,
    },
    /// Shed to the end-of-operation sweep by the admission gate, then
    /// executed on the quiet path — deferred, never dropped.
    DeferredSwept,
    /// A step-less review (or a sweep-discovered incident) that never
    /// contended for a lane.
    Review,
}

impl RecoveryPath {
    /// Canonical tag for transcripts and journals.
    pub fn tag(&self) -> &'static str {
        match self {
            RecoveryPath::Eager {
                throttled: true, ..
            } => "eager-throttled",
            RecoveryPath::Eager { .. } => "eager",
            RecoveryPath::DeferredSwept => "deferred-swept",
            RecoveryPath::Review => "review",
        }
    }
}

/// One finished recovery run, tagged with its detection index and the
/// path it took through the storm.
#[derive(Debug, Clone)]
pub struct StormRecord {
    /// The detection index within the tenant's run.
    pub detection_index: usize,
    /// How the run reached the executor.
    pub path: RecoveryPath,
    /// The full recovery run.
    pub run: RecoveryRun,
}

/// Exact accounting of the storm's admission decisions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StormStats {
    /// Actionable repairs offered to the admission gate.
    pub requests: u64,
    /// Repairs granted a lane (eager path).
    pub admitted: u64,
    /// Admitted repairs the shared API throttled (counted once each).
    pub throttled: u64,
    /// Repairs shed to the sweep by the lane-wait cap.
    pub deferred: u64,
    /// Shed repairs later executed by a sweep (must equal `deferred`
    /// once every tenant swept).
    pub swept: u64,
    /// Highest in-flight lane count any grant observed.
    pub peak_concurrent: usize,
}

/// Cached handles for the `recovery.storm.*` metrics (on the gateway's
/// observability handle, so flight frames capture them).
#[derive(Debug)]
struct StormMetrics {
    requests: Counter,
    admitted: Counter,
    throttled: Counter,
    deferred: Counter,
    swept: Counter,
    concurrent: Gauge,
    queue_depth: Gauge,
}

impl StormMetrics {
    fn new(obs: &Obs) -> StormMetrics {
        StormMetrics {
            requests: obs.counter("recovery.storm.requests"),
            admitted: obs.counter("recovery.storm.admitted"),
            throttled: obs.counter("recovery.storm.throttled"),
            deferred: obs.counter("recovery.storm.deferred"),
            swept: obs.counter("recovery.storm.swept"),
            concurrent: obs.gauge("recovery.storm.concurrent"),
            queue_depth: obs.gauge("recovery.storm.queue_depth"),
        }
    }
}

/// One tenant's slot: its dispatcher plus the storm's bookkeeping about
/// which of its incidents went where.
#[derive(Debug)]
struct TenantSlot {
    dispatcher: RecoveryDispatcher,
    cloud: Cloud,
    /// Detection indices shed to the sweep by the admission gate.
    deferred: Vec<usize>,
    /// Detection indices dispatched eagerly: (throttled, charged delay).
    eager: BTreeMap<usize, (bool, SimDuration)>,
}

/// The shared cross-tenant repair arbiter. One storm serves every tenant
/// of a gateway soak; wire each engine's detection hook to
/// [`RecoveryStorm::on_notice`] and call [`RecoveryStorm::sweep`] per
/// tenant after the gateway finishes.
#[derive(Debug)]
pub struct RecoveryStorm {
    /// The shared arbitration timeline (the gateway clock).
    clock: Clock,
    gate: AdmissionGate,
    config: StormConfig,
    tenants: Vec<TenantSlot>,
    metrics: StormMetrics,
    stats: StormStats,
}

impl RecoveryStorm {
    /// A storm arbitrating on `clock` (the gateway clock) and reporting
    /// into `obs` (the gateway's observability handle).
    pub fn new(obs: &Obs, clock: Clock, config: StormConfig) -> RecoveryStorm {
        RecoveryStorm {
            gate: AdmissionGate::new(config.lanes, config.max_lane_wait),
            metrics: StormMetrics::new(obs),
            clock,
            config,
            tenants: Vec::new(),
            stats: StormStats::default(),
        }
    }

    /// Registers one tenant: its own cloud, log storage, expected
    /// environment and trace id, served by a dedicated dispatcher.
    pub fn register_tenant(
        &mut self,
        cloud: Cloud,
        storage: LogStorage,
        env: SharedEnv,
        trace_id: impl Into<String>,
        config: RecoveryConfig,
    ) -> TenantId {
        let id = TenantId(self.tenants.len());
        self.tenants.push(TenantSlot {
            dispatcher: RecoveryDispatcher::new(cloud.clone(), storage, env, trace_id, config),
            cloud,
            deferred: Vec::new(),
            eager: BTreeMap::new(),
        });
        id
    }

    /// The engine-hook entry point for `tenant`. `Detected` notices pass
    /// straight through (pre-staging is tenant-local and free of shared
    /// API work); `Diagnosed` notices with an actionable repair contend
    /// for an admission-gate lane.
    pub fn on_notice(&mut self, tenant: TenantId, notice: &EngineNotice) {
        match notice {
            EngineNotice::Detected { .. } => self.tenants[tenant.0].dispatcher.on_notice(notice),
            EngineNotice::Diagnosed {
                detection_index,
                detection,
            } => self.diagnosed(tenant, *detection_index, detection, notice),
        }
    }

    fn diagnosed(
        &mut self,
        tenant: TenantId,
        detection_index: usize,
        detection: &Detection,
        notice: &EngineNotice,
    ) {
        if !self.tenants[tenant.0].dispatcher.is_actionable(detection) {
            // A step-less review: no shared-API repair work, no lane.
            self.tenants[tenant.0].dispatcher.on_notice(notice);
            return;
        }
        self.stats.requests += 1;
        self.metrics.requests.incr();
        let now = self.clock.now();
        match self.gate.request(now) {
            Admission::Granted {
                lane,
                start,
                waited,
                in_flight,
            } => {
                self.stats.admitted += 1;
                self.metrics.admitted.incr();
                self.stats.peak_concurrent = self.stats.peak_concurrent.max(in_flight);
                self.metrics.concurrent.set(in_flight as i64);
                let excess = in_flight.saturating_sub(self.config.throttle_at);
                let throttled = excess > 0;
                if throttled {
                    self.stats.throttled += 1;
                    self.metrics.throttled.incr();
                }
                // The lane queue wait and the throttle penalty both land
                // on the tenant's clock before the repair starts — that
                // is where MTTR-under-load diverges from the quiet path.
                let delay = waited + self.config.throttle_penalty * excess as u64;
                let slot = &mut self.tenants[tenant.0];
                if delay > SimDuration::ZERO {
                    slot.cloud.clock().advance(delay);
                }
                let before = slot.cloud.clock().now();
                slot.dispatcher.on_notice(notice);
                let took = slot.cloud.clock().now().duration_since(before);
                slot.eager.insert(detection_index, (throttled, delay));
                self.gate.occupy(lane, start + took);
            }
            Admission::Deferred { .. } => {
                self.stats.deferred += 1;
                self.metrics.deferred.incr();
                self.tenants[tenant.0].deferred.push(detection_index);
                self.update_queue_depth();
            }
        }
    }

    /// Refreshes the in-flight and backlog gauges at `now` — wired to
    /// [`pod_gateway::Gateway::set_incident_hook`] so every flight frame
    /// forced by a detection carries the storm's current pressure.
    pub fn observe(&mut self, now: SimTime) {
        self.metrics.concurrent.set(self.gate.in_flight(now) as i64);
        self.update_queue_depth();
    }

    /// The per-tenant end-of-operation sweep: executes everything the
    /// eager path did not handle — including every repair the gate shed —
    /// on the quiet post-soak path, and returns the tenant's finished
    /// runs tagged with the path each one took. No incident is dropped.
    pub fn sweep(&mut self, tenant: TenantId, detections: &[Detection]) -> Vec<StormRecord> {
        let shed: BTreeSet<usize> = std::mem::take(&mut self.tenants[tenant.0].deferred)
            .into_iter()
            .collect();
        self.stats.swept += shed.len() as u64;
        self.metrics.swept.add(shed.len() as u64);
        self.update_queue_depth();
        let slot = &mut self.tenants[tenant.0];
        slot.dispatcher.sweep(detections);
        let eager = std::mem::take(&mut slot.eager);
        slot.dispatcher
            .take_records()
            .into_iter()
            .map(|(detection_index, run)| {
                let path = match eager.get(&detection_index) {
                    Some(&(throttled, delayed)) => RecoveryPath::Eager { throttled, delayed },
                    None if shed.contains(&detection_index) => RecoveryPath::DeferredSwept,
                    None => RecoveryPath::Review,
                };
                StormRecord {
                    detection_index,
                    path,
                    run,
                }
            })
            .collect()
    }

    /// The storm's exact admission accounting.
    pub fn stats(&self) -> StormStats {
        self.stats
    }

    /// The contention knobs the storm runs under.
    pub fn config(&self) -> &StormConfig {
        &self.config
    }

    /// Registered tenants.
    pub fn tenants(&self) -> usize {
        self.tenants.len()
    }

    fn update_queue_depth(&self) {
        let backlog: usize = self.tenants.iter().map(|t| t.deferred.len()).sum();
        self.metrics.queue_depth.set(backlog as i64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pod_assert::ExpectedEnv;
    use pod_cloud::{CloudConfig, LaunchConfigUpdate};
    use pod_core::DetectionSource;
    use pod_faulttree::{DiagnosedCause, DiagnosisReport};
    use pod_sim::SimRng;

    /// A cluster whose upgrade launch configuration points at a stale AMI
    /// — the repairable `lc-wrong-ami` fault the dispatcher tests use.
    fn corrupted_tenant(seed: u64) -> (Cloud, SharedEnv) {
        let cloud = Cloud::new(
            Clock::new(),
            SimRng::seed_from(seed),
            CloudConfig {
                stale_read_prob: 0.0,
                ..CloudConfig::default()
            },
        );
        let ami = cloud.admin_create_ami("app", "2.0");
        let sg = cloud.admin_create_security_group("web", &[80]);
        let kp = cloud.admin_create_key_pair("prod");
        let elb = cloud.admin_create_elb("front");
        let lc =
            cloud.admin_create_launch_config("lc", ami.clone(), "m1.small", kp.clone(), sg.clone());
        let asg = cloud.admin_create_asg("g", lc.clone(), 1, 10, 2, Some(elb.clone()));
        let env = ExpectedEnv {
            asg,
            elb,
            launch_config: lc.clone(),
            expected_ami: ami,
            expected_version: "2.0".into(),
            expected_key_pair: kp,
            expected_security_group: sg,
            expected_instance_type: "m1.small".into(),
            expected_count: 2,
        };
        let old = cloud.admin_create_ami("app-old", "1.0");
        cloud.admin_update_launch_config(
            &lc,
            LaunchConfigUpdate {
                ami: Some(old),
                ..LaunchConfigUpdate::default()
            },
        );
        (cloud, SharedEnv::new(env))
    }

    fn diagnosed(cloud: &Cloud, cause: &str) -> Detection {
        let at = cloud.clock().now();
        Detection {
            at,
            source: DetectionSource::AssertionLog,
            description: "assertion asg-launch-config-correct failed".to_string(),
            step: Some("update-launch-config".to_string()),
            key: "asg-launch-config-correct".to_string(),
            instance: None,
            diagnosis: Some(DiagnosisReport {
                root_causes: vec![DiagnosedCause {
                    node_id: cause.to_string(),
                    description: format!("confirmed {cause}"),
                }],
                stopped_at: Vec::new(),
                potential_faults: 4,
                excluded: 3,
                tests_run: 4,
                first_cause_after: Some(SimDuration::from_secs(2)),
                started_at: at + SimDuration::from_secs(5),
                duration: SimDuration::from_secs(3),
            }),
            event: None,
        }
    }

    fn register(storm: &mut RecoveryStorm, cloud: &Cloud, env: &SharedEnv, id: &str) -> TenantId {
        storm.register_tenant(
            cloud.clone(),
            LogStorage::new(),
            env.clone(),
            id,
            RecoveryConfig::default(),
        )
    }

    fn dispatch_one(storm: &mut RecoveryStorm, tenant: TenantId, detection: &Detection) {
        storm.on_notice(
            tenant,
            &EngineNotice::Diagnosed {
                detection_index: 0,
                detection: detection.clone(),
            },
        );
    }

    /// Satellite: quiet-vs-loaded equivalence. The same tenant (same
    /// seed, same corruption) repairs to the same verified end state —
    /// same plan ladder, same verdict, same verification keys — whether
    /// the cloud is quiet or contended; contention only moves the finish
    /// time later on the virtual clock.
    #[test]
    fn loaded_repair_matches_quiet_end_state_only_slower() {
        // Quiet: plenty of lanes, throttle threshold never reached.
        let clock_q = Clock::new();
        let obs_q = Obs::new(clock_q.clone());
        let mut quiet = RecoveryStorm::new(
            &obs_q,
            clock_q,
            StormConfig {
                lanes: 4,
                throttle_at: 8,
                ..StormConfig::default()
            },
        );
        let (cloud_q, env_q) = corrupted_tenant(91);
        let tq = register(&mut quiet, &cloud_q, &env_q, "quiet-1");
        let dq = diagnosed(&cloud_q, "lc-wrong-ami");
        dispatch_one(&mut quiet, tq, &dq);
        let quiet_records = quiet.sweep(tq, std::slice::from_ref(&dq));

        // Loaded: one lane, zero-tolerance throttling, and a contending
        // tenant that grabs the lane first.
        let clock_l = Clock::new();
        let obs_l = Obs::new(clock_l.clone());
        let mut loaded = RecoveryStorm::new(
            &obs_l,
            clock_l,
            StormConfig {
                lanes: 1,
                throttle_at: 0,
                throttle_penalty: SimDuration::from_secs(5),
                max_lane_wait: SimDuration::from_secs(3600),
            },
        );
        let (cloud_a, env_a) = corrupted_tenant(95);
        let ta = register(&mut loaded, &cloud_a, &env_a, "contender");
        let (cloud_b, env_b) = corrupted_tenant(91);
        let tb = register(&mut loaded, &cloud_b, &env_b, "quiet-1");
        let da = diagnosed(&cloud_a, "lc-wrong-ami");
        dispatch_one(&mut loaded, ta, &da);
        let db = diagnosed(&cloud_b, "lc-wrong-ami");
        dispatch_one(&mut loaded, tb, &db);
        loaded.sweep(ta, std::slice::from_ref(&da));
        let loaded_records = loaded.sweep(tb, std::slice::from_ref(&db));

        assert_eq!(quiet_records.len(), 1);
        assert_eq!(loaded_records.len(), 1);
        let q = &quiet_records[0].run;
        let l = &loaded_records[0].run;

        // Same verified end state…
        assert_eq!(q.root_cause, l.root_cause);
        assert_eq!(q.plans_tried, l.plans_tried);
        assert_eq!(q.outcome, l.outcome);
        assert!(q.outcome.is_recovered());
        let keys = |r: &RecoveryRun| {
            r.verifications
                .iter()
                .map(|v| (v.key.clone(), v.passed))
                .collect::<Vec<_>>()
        };
        assert_eq!(keys(q), keys(l));

        // …only later on the virtual clock.
        match loaded_records[0].path {
            RecoveryPath::Eager { throttled, delayed } => {
                assert!(throttled, "1-lane storm with throttle_at=0 must throttle");
                assert!(delayed > SimDuration::ZERO);
            }
            ref other => panic!("expected eager path, got {other:?}"),
        }
        assert!(
            l.finished_at > q.finished_at,
            "loaded repair must finish later: quiet {:?} vs loaded {:?}",
            q.finished_at,
            l.finished_at
        );
        assert!(l.mttr().unwrap() > q.mttr().unwrap());
        assert_eq!(loaded.stats().throttled, 2);
        assert_eq!(obs_l.snapshot().counter("recovery.storm.throttled"), 2);
    }

    /// Shed-to-sweep: a repair the gate cannot serve within the wait cap
    /// is deferred, then executed by the sweep — never dropped, and the
    /// accounting stays exact.
    #[test]
    fn deferred_repair_is_swept_never_dropped() {
        let clock = Clock::new();
        let obs = Obs::new(clock.clone());
        let mut storm = RecoveryStorm::new(
            &obs,
            clock,
            StormConfig {
                lanes: 1,
                max_lane_wait: SimDuration::ZERO,
                throttle_at: 8,
                ..StormConfig::default()
            },
        );
        let (cloud_a, env_a) = corrupted_tenant(21);
        let ta = register(&mut storm, &cloud_a, &env_a, "t-a");
        let (cloud_b, env_b) = corrupted_tenant(22);
        let tb = register(&mut storm, &cloud_b, &env_b, "t-b");

        // Tenant A takes the only lane; tenant B's repair would have to
        // queue past the (zero) cap and is shed to the sweep.
        let da = diagnosed(&cloud_a, "lc-wrong-ami");
        dispatch_one(&mut storm, ta, &da);
        let db = diagnosed(&cloud_b, "lc-wrong-ami");
        dispatch_one(&mut storm, tb, &db);

        let s = storm.stats();
        assert_eq!(s.requests, 2);
        assert_eq!(s.admitted, 1);
        assert_eq!(s.deferred, 1);
        assert_eq!(s.swept, 0, "not swept yet");
        assert_eq!(
            obs.snapshot().gauges.get("recovery.storm.queue_depth"),
            Some(&1)
        );

        let ra = storm.sweep(ta, std::slice::from_ref(&da));
        let rb = storm.sweep(tb, std::slice::from_ref(&db));
        assert_eq!(ra.len(), 1);
        assert_eq!(rb.len(), 1);
        assert_eq!(ra[0].path.tag(), "eager");
        assert_eq!(rb[0].path.tag(), "deferred-swept");
        assert!(rb[0].run.outcome.is_recovered(), "swept repair still runs");

        let s = storm.stats();
        assert_eq!(s.swept, s.deferred);
        assert_eq!(s.admitted + s.deferred, s.requests);
        assert_eq!(obs.snapshot().counter("recovery.storm.swept"), 1);
        assert_eq!(
            obs.snapshot().gauges.get("recovery.storm.queue_depth"),
            Some(&0)
        );
    }

    /// Non-actionable diagnoses (benign interference, no cause found)
    /// never touch the admission gate: lanes are for real repairs.
    #[test]
    fn reviews_do_not_contend_for_lanes() {
        let clock = Clock::new();
        let obs = Obs::new(clock.clone());
        let mut storm = RecoveryStorm::new(&obs, clock, StormConfig::default());
        let (cloud, env) = corrupted_tenant(31);
        let t = register(&mut storm, &cloud, &env, "t-r");
        let d = diagnosed(&cloud, "concurrent-scale-in");
        dispatch_one(&mut storm, t, &d);
        assert_eq!(storm.stats().requests, 0);
        let records = storm.sweep(t, std::slice::from_ref(&d));
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].path, RecoveryPath::Review);
        assert_eq!(records[0].run.plans_tried, vec!["confirm-resolved"]);
    }
}
