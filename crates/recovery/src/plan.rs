//! The recovery plan library: a parameterised repair plan per diagnosable
//! root cause.
//!
//! The library mirrors the fault-tree knowledge base in
//! `pod_faulttree::library`: every leaf the diagnosis engine can confirm
//! maps to an executable plan, instantiated from the same expected
//! environment the assertions evaluate against. Root causes without a
//! mapped plan (concurrent interference, account limits, external
//! terminations) are deliberately unmapped — the executor escalates them
//! to the operator instead of guessing.

use pod_assert::{CloudAssertion, ExpectedEnv};
use pod_cloud::InstanceId;

/// A cloud resource kind the executor can restore to availability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResourceKind {
    /// A machine image.
    Ami,
    /// An SSH key pair.
    KeyPair,
    /// A security group.
    SecurityGroup,
    /// A load balancer.
    Elb,
}

impl ResourceKind {
    /// Short label used in step names and log lines.
    pub fn label(self) -> &'static str {
        match self {
            ResourceKind::Ami => "ami",
            ResourceKind::KeyPair => "key-pair",
            ResourceKind::SecurityGroup => "security-group",
            ResourceKind::Elb => "elb",
        }
    }
}

/// One executable repair step. Steps are parameterised by the expected
/// environment at execution time, so the same plan serves every run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoveryStep {
    /// Roll the corrupted launch configuration back in place: delete it
    /// and re-create it under the same name from the expected values, then
    /// re-point the ASG at it.
    RepairLaunchConfig,
    /// Create a fresh, uniquely named launch configuration from the
    /// expected values and switch the ASG over — the fallback strategy
    /// when in-place repair fails.
    SwitchLaunchConfig,
    /// Restore a resource the operation depends on to availability.
    RestoreResource(ResourceKind),
    /// Re-register in-service instances the load balancer lost while it
    /// was unavailable.
    ReregisterInstances,
    /// Terminate every active instance the fault actually corrupted: those
    /// launched from the expected launch configuration whose configuration
    /// deviates from the expectation. Instances still on an older launch
    /// configuration are the running operation's business, not the
    /// repair's — scoping the replacement to the fault is what lets a
    /// repair finish in seconds mid-operation instead of re-rolling the
    /// whole group.
    ReplaceCorruptedInstances,
    /// Wait until no active instance launched from the expected launch
    /// configuration deviates from the expected configuration (corrupted
    /// instances are terminating or replaced).
    WaitLaunchConfigSettled,
    /// Terminate one specific instance (re-issues a lost terminate call).
    TerminateInstance(InstanceId),
    /// Register one specific instance with the load balancer.
    RegisterInstanceWithElb(InstanceId),
}

impl RecoveryStep {
    /// Stable step name, used in log lines and transcripts.
    pub fn name(&self) -> String {
        match self {
            RecoveryStep::RepairLaunchConfig => "repair-launch-config".to_string(),
            RecoveryStep::SwitchLaunchConfig => "switch-launch-config".to_string(),
            RecoveryStep::RestoreResource(kind) => format!("restore-{}", kind.label()),
            RecoveryStep::ReregisterInstances => "reregister-instances".to_string(),
            RecoveryStep::ReplaceCorruptedInstances => "replace-corrupted-instances".to_string(),
            RecoveryStep::WaitLaunchConfigSettled => "wait-launch-config-settled".to_string(),
            RecoveryStep::TerminateInstance(_) => "terminate-instance".to_string(),
            RecoveryStep::RegisterInstanceWithElb(_) => "register-instance-with-elb".to_string(),
        }
    }
}

/// An ordered repair recipe with its own closed-loop verification and an
/// optional fallback strategy (the next rung of the escalation ladder).
///
/// A plan may have *zero* steps: the recovery process model allows going
/// straight from planning to verification, which is how the dispatcher's
/// operation-end review confirms that an incident without an actionable
/// root cause (transient blip, legitimate concurrent operation) resolved
/// itself — only a passing re-check counts as recovered.
#[derive(Debug, Clone)]
pub struct RecoveryPlan {
    /// Stable plan id.
    pub id: String,
    /// What the plan does, instantiated for this environment.
    pub description: String,
    /// Steps, in execution order.
    pub steps: Vec<RecoveryStep>,
    /// Assertions that must all pass after execution for the run to count
    /// as [`Recovered`](crate::RecoveryOutcome::Recovered). These are the
    /// same `pod-assert` checks whose failure triggered diagnosis.
    pub verify: Vec<CloudAssertion>,
    /// Strategy tried when a step exhausts its budget or verification
    /// fails; `None` means the next failure escalates to the operator.
    pub fallback: Option<Box<RecoveryPlan>>,
}

impl RecoveryPlan {
    /// A step-less verification plan: re-check the given assertions and
    /// count the incident as recovered only if they all pass now. Used at
    /// operation end for diagnoses without a mapped repair (no root cause
    /// identified, or a confirmed-benign concurrent operation).
    pub fn confirm_resolved(description: impl Into<String>, verify: Vec<CloudAssertion>) -> Self {
        RecoveryPlan {
            id: "confirm-resolved".to_string(),
            description: description.into(),
            steps: Vec::new(),
            verify,
            fallback: None,
        }
    }
}

/// The plan library: root-cause node id → instantiated [`RecoveryPlan`].
#[derive(Debug, Clone, Copy, Default)]
pub struct PlanLibrary;

impl PlanLibrary {
    /// Creates the library.
    pub fn new() -> PlanLibrary {
        PlanLibrary
    }

    /// Root-cause node ids with a mapped plan. Causes outside this list
    /// (concurrent interference, instance limits, unexplained
    /// terminations) always escalate.
    pub fn mapped_causes(&self) -> &'static [&'static str] {
        &[
            "lc-wrong-ami",
            "lc-wrong-key-pair",
            "lc-wrong-sg",
            "lc-wrong-instance-type",
            "ami-unavailable",
            "key-pair-unavailable",
            "sg-unavailable",
            "elb-unavailable",
            "instance-still-running",
            "instance-not-registered",
        ]
    }

    /// Instantiates the plan for a confirmed root cause, or `None` when
    /// the cause is unmapped (or needs an instance context that the
    /// diagnosis did not provide).
    pub fn plan_for(
        &self,
        root_cause: &str,
        env: &ExpectedEnv,
        instance: Option<&InstanceId>,
    ) -> Option<RecoveryPlan> {
        match root_cause {
            "lc-wrong-ami" => Some(rollback_launch_config(
                env,
                CloudAssertion::LaunchConfigUsesAmi,
            )),
            "lc-wrong-key-pair" => Some(rollback_launch_config(
                env,
                CloudAssertion::LaunchConfigUsesKeyPair,
            )),
            "lc-wrong-sg" => Some(rollback_launch_config(
                env,
                CloudAssertion::LaunchConfigUsesSecurityGroup,
            )),
            "lc-wrong-instance-type" => Some(rollback_launch_config(
                env,
                CloudAssertion::LaunchConfigUsesInstanceType,
            )),
            "ami-unavailable" => Some(restore_resource(
                env,
                ResourceKind::Ami,
                CloudAssertion::AmiAvailable,
            )),
            "key-pair-unavailable" => Some(restore_resource(
                env,
                ResourceKind::KeyPair,
                CloudAssertion::KeyPairAvailable,
            )),
            "sg-unavailable" => Some(restore_resource(
                env,
                ResourceKind::SecurityGroup,
                CloudAssertion::SecurityGroupAvailable,
            )),
            "elb-unavailable" => Some(restore_elb(env)),
            "instance-still-running" => instance.map(terminate_stuck_instance),
            "instance-not-registered" => instance.map(reregister_instance),
            _ => None,
        }
    }
}

/// The fault-scoped assertion every ASG-level plan re-checks: all active
/// instances launched from the expected launch configuration match the full
/// expected configuration. Unlike the whole-group count assertion it can
/// pass *mid-operation* (instances the upgrade has yet to replace are out
/// of scope), so an eager repair verifies in seconds; group-level
/// convergence remains the operation's own exit criterion.
fn consistency_assertion(_env: &ExpectedEnv) -> CloudAssertion {
    CloudAssertion::LaunchConfigInstancesConsistent
}

/// Plan for the four launch-configuration corruption causes: repair the
/// configuration in place, replace the instances launched from the bad
/// one, and wait for the corrupted instances to drain. Falls back to
/// switching the ASG to a freshly created replacement configuration.
fn rollback_launch_config(env: &ExpectedEnv, lc_assertion: CloudAssertion) -> RecoveryPlan {
    RecoveryPlan {
        id: "rollback-launch-config".to_string(),
        description: format!(
            "roll launch configuration {} back to the expected values and replace corrupted \
             instances of {}",
            env.launch_config, env.asg
        ),
        steps: vec![
            RecoveryStep::RepairLaunchConfig,
            RecoveryStep::ReplaceCorruptedInstances,
            RecoveryStep::WaitLaunchConfigSettled,
        ],
        verify: vec![lc_assertion, consistency_assertion(env)],
        fallback: Some(Box::new(RecoveryPlan {
            id: "switch-launch-config".to_string(),
            description: format!(
                "create a replacement launch configuration and switch {} over to it",
                env.asg
            ),
            steps: vec![
                RecoveryStep::SwitchLaunchConfig,
                RecoveryStep::ReplaceCorruptedInstances,
                RecoveryStep::WaitLaunchConfigSettled,
            ],
            verify: vec![consistency_assertion(env)],
            fallback: None,
        })),
    }
}

/// Plan for unavailable-resource causes: restore availability, then
/// resume the halted replacement (corrupted instances are replaced and
/// the group settles at the expected version).
fn restore_resource(
    env: &ExpectedEnv,
    kind: ResourceKind,
    availability: CloudAssertion,
) -> RecoveryPlan {
    RecoveryPlan {
        id: format!("restore-{}-and-resume", kind.label()),
        description: format!(
            "restore the unavailable {} and resume replacing instances of {}",
            kind.label(),
            env.asg
        ),
        steps: vec![
            RecoveryStep::RestoreResource(kind),
            RecoveryStep::ReplaceCorruptedInstances,
            RecoveryStep::WaitLaunchConfigSettled,
        ],
        verify: vec![availability, consistency_assertion(env)],
        fallback: None,
    }
}

/// Plan for an unavailable load balancer: restore it, re-register the
/// instances it lost, then resume the replacement.
fn restore_elb(env: &ExpectedEnv) -> RecoveryPlan {
    RecoveryPlan {
        id: "restore-elb-and-resume".to_string(),
        description: format!(
            "restore load balancer {} and re-register the instances of {}",
            env.elb, env.asg
        ),
        steps: vec![
            RecoveryStep::RestoreResource(ResourceKind::Elb),
            RecoveryStep::ReregisterInstances,
            RecoveryStep::ReplaceCorruptedInstances,
            RecoveryStep::WaitLaunchConfigSettled,
        ],
        verify: vec![CloudAssertion::ElbAvailable, consistency_assertion(env)],
        fallback: None,
    }
}

/// Plan for a terminate call that was lost or throttled: re-issue it.
fn terminate_stuck_instance(instance: &InstanceId) -> RecoveryPlan {
    RecoveryPlan {
        id: "terminate-stuck-instance".to_string(),
        description: format!("re-issue the lost terminate call for instance {instance}"),
        steps: vec![RecoveryStep::TerminateInstance(instance.clone())],
        verify: vec![CloudAssertion::InstanceTerminated {
            instance: instance.clone(),
        }],
        fallback: None,
    }
}

/// Plan for an instance that failed to register with the load balancer:
/// register it directly, falling back to restoring the balancer first.
fn reregister_instance(instance: &InstanceId) -> RecoveryPlan {
    let verify = vec![CloudAssertion::InstanceRegisteredWithElb {
        instance: instance.clone(),
    }];
    RecoveryPlan {
        id: "register-instance".to_string(),
        description: format!("register instance {instance} with the load balancer"),
        steps: vec![RecoveryStep::RegisterInstanceWithElb(instance.clone())],
        verify: verify.clone(),
        fallback: Some(Box::new(RecoveryPlan {
            id: "restore-elb-and-register".to_string(),
            description: format!(
                "restore the load balancer, then register instance {instance} with it"
            ),
            steps: vec![
                RecoveryStep::RestoreResource(ResourceKind::Elb),
                RecoveryStep::RegisterInstanceWithElb(instance.clone()),
            ],
            verify,
            fallback: None,
        })),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pod_cloud::{AmiId, AsgName, ElbName, KeyPairName, LaunchConfigName, SecurityGroupId};

    fn env() -> ExpectedEnv {
        ExpectedEnv {
            asg: AsgName::new("g"),
            elb: ElbName::new("front"),
            launch_config: LaunchConfigName::new("lc"),
            expected_ami: AmiId::new("ami-2"),
            expected_version: "2.0".to_string(),
            expected_key_pair: KeyPairName::new("prod"),
            expected_security_group: SecurityGroupId::new("sg-1"),
            expected_instance_type: "m1.small".to_string(),
            expected_count: 2,
        }
    }

    #[test]
    fn every_injectable_fault_root_cause_has_a_plan() {
        // The eight root causes the evaluation's fault injector can
        // produce (`FaultType::expected_root_cause`), spelled out so this
        // test breaks loudly if the fault-tree node ids drift.
        let library = PlanLibrary::new();
        let env = env();
        for cause in [
            "lc-wrong-ami",
            "lc-wrong-key-pair",
            "lc-wrong-sg",
            "lc-wrong-instance-type",
            "ami-unavailable",
            "key-pair-unavailable",
            "sg-unavailable",
            "elb-unavailable",
        ] {
            let plan = library.plan_for(cause, &env, None);
            assert!(plan.is_some(), "no recovery plan for {cause}");
            let plan = plan.unwrap();
            assert!(!plan.steps.is_empty(), "empty plan for {cause}");
            assert!(!plan.verify.is_empty(), "no verification for {cause}");
            assert!(library.mapped_causes().contains(&cause));
        }
    }

    #[test]
    fn library_root_causes_exist_in_the_fault_trees() {
        // Every mapped cause must be a node the diagnosis engine can
        // actually confirm somewhere in the rolling-upgrade repository.
        let repo = pod_faulttree::rolling_upgrade_repository(true);
        let known: Vec<&str> = repo
            .trees()
            .iter()
            .flat_map(|t| t.root.ids())
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        for cause in PlanLibrary::new().mapped_causes() {
            assert!(
                known.contains(cause),
                "plan library maps {cause}, which no fault tree contains"
            );
        }
    }

    #[test]
    fn interference_causes_stay_unmapped() {
        let library = PlanLibrary::new();
        let env = env();
        for cause in [
            "concurrent-capacity-change",
            "concurrent-scale-in",
            "instance-limit-reached",
            "instance-not-in-service",
        ] {
            assert!(
                library.plan_for(cause, &env, None).is_none(),
                "{cause} should escalate, not auto-repair"
            );
        }
    }

    #[test]
    fn instance_plans_need_an_instance_context() {
        let library = PlanLibrary::new();
        let env = env();
        assert!(library
            .plan_for("instance-still-running", &env, None)
            .is_none());
        let id = pod_cloud::InstanceId::new("i-1234");
        let plan = library
            .plan_for("instance-still-running", &env, Some(&id))
            .unwrap();
        assert_eq!(plan.steps, vec![RecoveryStep::TerminateInstance(id)]);
    }

    #[test]
    fn launch_config_plans_carry_a_fallback() {
        let env = env();
        let plan = PlanLibrary::new()
            .plan_for("lc-wrong-ami", &env, None)
            .unwrap();
        let fallback = plan.fallback.as_ref().expect("has a fallback");
        assert_eq!(fallback.id, "switch-launch-config");
        assert!(fallback.fallback.is_none(), "ladder ends at the fallback");
    }
}
