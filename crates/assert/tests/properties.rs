//! Property-based tests for timers, the DSL parser and the consistent API.

use pod_assert::dsl::{parse_assertion, parse_library};
use pod_assert::{ConsistentApi, RetryPolicy, TimerService};
use pod_cloud::{Cloud, CloudConfig};
use pod_sim::{Clock, SimDuration, SimRng, SimTime};
use proptest::prelude::*;

proptest! {
    /// One-off timers fire exactly once, in chronological order, no matter
    /// how `due` calls are spaced.
    #[test]
    fn one_off_timers_fire_exactly_once(
        fire_times in prop::collection::vec(1u64..500, 1..20),
        polls in prop::collection::vec(1u64..600, 1..10),
    ) {
        let mut timers = TimerService::new();
        for (i, t) in fire_times.iter().enumerate() {
            timers.schedule_once(SimTime::from_millis(*t), i);
        }
        let mut poll_points = polls.clone();
        poll_points.sort_unstable();
        poll_points.push(1000); // final catch-all poll
        let mut fired = Vec::new();
        for p in poll_points {
            fired.extend(timers.due(SimTime::from_millis(p)));
        }
        prop_assert_eq!(fired.len(), fire_times.len());
        // Each payload appears exactly once.
        let mut payloads: Vec<usize> = fired.iter().map(|f| f.2).collect();
        payloads.sort_unstable();
        payloads.dedup();
        prop_assert_eq!(payloads.len(), fire_times.len());
        // Due times never exceed the poll time and never decrease.
        for pair in fired.windows(2) {
            prop_assert!(pair[0].1 <= pair[1].1);
        }
    }

    /// A periodic timer fires floor((horizon - first)/period) + 1 times.
    #[test]
    fn periodic_fire_count_is_exact(
        first in 1u64..50,
        period in 1u64..50,
        horizon in 100u64..500,
    ) {
        let mut timers = TimerService::new();
        timers.schedule_periodic(
            SimTime::from_millis(first),
            SimDuration::from_millis(period),
            (),
        );
        let fired = timers.due(SimTime::from_millis(horizon));
        let expected = (horizon - first) / period + 1;
        prop_assert_eq!(fired.len() as u64, expected);
    }

    /// The DSL parser never panics on arbitrary input.
    #[test]
    fn dsl_never_panics(text in "[ -~\\n]{0,200}") {
        let _ = parse_assertion(&text);
        let _ = parse_library(&text);
    }

    /// Numeric forms round-trip through the parser for any count.
    #[test]
    fn dsl_parses_any_count(n in 0u32..100_000) {
        let spec = format!("assert asg has exactly {n} instances");
        match parse_assertion(&spec) {
            Ok(pod_assert::BoundAssertion::Fixed(
                pod_assert::CloudAssertion::AsgInstanceCount { count },
            )) => prop_assert_eq!(count, n),
            other => prop_assert!(false, "unexpected {:?}", other),
        }
    }

    /// The consistent layer never exceeds its timeout budget by more than
    /// one backoff + one call.
    #[test]
    fn consistent_api_respects_timeout(seed in 0u64..200, timeout_s in 1u64..8) {
        let cloud = Cloud::new(
            Clock::new(),
            SimRng::seed_from(seed),
            CloudConfig {
                api_failure_prob: 1.0, // never succeeds
                ..CloudConfig::default()
            },
        );
        let ami = cloud.admin_create_ami("a", "1");
        let policy = RetryPolicy {
            max_retries: 1000,
            base_backoff: SimDuration::from_millis(100),
            multiplier: 2.0,
            timeout: SimDuration::from_secs(timeout_s),
        };
        let api = ConsistentApi::new(cloud.clone(), policy);
        let t0 = cloud.clock().now();
        let result = api.execute(|c| c.describe_ami(&ami));
        prop_assert!(result.is_err());
        let elapsed = cloud.clock().now().duration_since(t0);
        // Budget plus the last backoff (bounded by the budget itself) plus
        // one call.
        let slack = SimDuration::from_secs(timeout_s) + SimDuration::from_millis(200);
        prop_assert!(
            elapsed <= SimDuration::from_secs(timeout_s) + slack,
            "elapsed {elapsed}"
        );
    }
}
