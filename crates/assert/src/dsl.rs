//! The assertion specification language.
//!
//! The paper closes with: "In order to simplify specifying boilerplate
//! assertions, we are designing an assertion specification language at the
//! moment." This module implements that language: a small, line-oriented
//! DSL that compiles to [`BoundAssertion`]s and whole
//! [`AssertionLibrary`]s, so analysts bind assertions to process steps
//! without writing Rust.
//!
//! # Grammar (case-insensitive, articles optional)
//!
//! ```text
//! library  := binding*
//! binding  := "on" ACTIVITY ":" NEWLINE (INDENT assertion NEWLINE)*
//! assertion:=
//!     "assert system has" COUNT "instances with the new version"
//!   | "assert asg has exactly" NUMBER "instances"
//!   | "assert asg has at least" NUMBER "active instances"
//!   | "assert asg desired capacity is" NUMBER
//!   | "assert asg uses the expected launch configuration"
//!   | "assert launch configuration uses the expected" RESOURCE
//!   | "assert the expected" ("ami"|"key pair"|"security group"|"elb") "is available"
//!   | "assert the instance" INSTREF
//!   | "assert account has launch headroom"
//! COUNT    := NUMBER | "$" FIELD | "the expected count"
//! RESOURCE := "ami" | "key pair" | "security group" | "instance type"
//! INSTREF  := "uses the expected ami"
//!           | "matches the expected configuration"
//!           | "is in service"
//!           | "is registered with the elb"
//!           | "is deregistered from the elb"
//!           | "is terminated"
//! ```
//!
//! `$field` counts are resolved from the triggering log line (e.g. `$done`
//! from Asgard's "3 of 4 instance relaunches done"); instance references
//! resolve against the instance id annotated on the triggering line.
//!
//! # Examples
//!
//! ```
//! use pod_assert::dsl::parse_library;
//!
//! let lib = parse_library(r#"
//! on update-launch-configuration:
//!     assert asg uses the expected launch configuration
//!     assert launch configuration uses the expected ami
//! on new-instance-ready:
//!     assert the instance uses the expected ami
//!     assert system has $done instances with the new version
//! "#).unwrap();
//! assert_eq!(lib.for_activity("update-launch-configuration").len(), 2);
//! assert_eq!(lib.for_activity("new-instance-ready").len(), 2);
//! ```

use std::fmt;

use crate::assertion::{AssertionLibrary, BoundAssertion, CloudAssertion, InstanceAssertionKind};

/// A parse error, with the offending line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// 1-based line number in the spec text.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "assertion spec error on line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for SpecError {}

/// Normalises a spec line: lowercase, articles removed, whitespace
/// collapsed.
fn normalise(line: &str) -> Vec<String> {
    line.split_whitespace()
        .map(|w| w.to_lowercase())
        .filter(|w| !matches!(w.as_str(), "the" | "a" | "an"))
        .collect()
}

/// Parses one assertion specification into a [`BoundAssertion`].
///
/// # Errors
///
/// Returns a [`SpecError`] (with line number 1) describing the first token
/// that failed to parse.
pub fn parse_assertion(spec: &str) -> Result<BoundAssertion, SpecError> {
    parse_assertion_at(spec, 1)
}

fn err(line: usize, message: impl Into<String>) -> SpecError {
    SpecError {
        line,
        message: message.into(),
    }
}

fn parse_assertion_at(spec: &str, line: usize) -> Result<BoundAssertion, SpecError> {
    let words = normalise(spec);
    let w: Vec<&str> = words.iter().map(String::as_str).collect();
    if w.first() != Some(&"assert") {
        return Err(err(line, "assertions must start with `assert`"));
    }
    let rest = &w[1..];
    match rest {
        // assert system has COUNT instances with new version
        ["system", "has", count, "instances", "with", "new", "version"] => parse_count(count, line),
        // assert asg has exactly N instances
        ["asg", "has", "exactly", n, "instances"] => {
            Ok(BoundAssertion::Fixed(CloudAssertion::AsgInstanceCount {
                count: parse_number(n, line)?,
            }))
        }
        // assert asg has at least N active instances
        ["asg", "has", "at", "least", n, "active", "instances"] => Ok(BoundAssertion::Fixed(
            CloudAssertion::AsgActiveCountAtLeast {
                count: parse_number(n, line)?,
            },
        )),
        // assert asg desired capacity is N
        ["asg", "desired", "capacity", "is", n] => {
            Ok(BoundAssertion::Fixed(CloudAssertion::AsgDesiredCapacity {
                count: parse_number(n, line)?,
            }))
        }
        // assert asg uses expected launch configuration
        ["asg", "uses", "expected", "launch", "configuration" | "config"] => Ok(
            BoundAssertion::Fixed(CloudAssertion::AsgLaunchConfigCorrect),
        ),
        // assert launch configuration uses expected RESOURCE
        ["launch", "configuration" | "config", "uses", "expected", resource @ ..] => {
            let assertion = match resource {
                ["ami"] => CloudAssertion::LaunchConfigUsesAmi,
                ["key", "pair"] => CloudAssertion::LaunchConfigUsesKeyPair,
                ["security", "group"] => CloudAssertion::LaunchConfigUsesSecurityGroup,
                ["instance", "type"] => CloudAssertion::LaunchConfigUsesInstanceType,
                other => {
                    return Err(err(
                        line,
                        format!(
                            "unknown launch-configuration resource `{}`",
                            other.join(" ")
                        ),
                    ))
                }
            };
            Ok(BoundAssertion::Fixed(assertion))
        }
        // assert expected RESOURCE is available
        ["expected", resource @ .., "is", "available"] => {
            let assertion = match resource {
                ["ami"] => CloudAssertion::AmiAvailable,
                ["key", "pair"] => CloudAssertion::KeyPairAvailable,
                ["security", "group"] => CloudAssertion::SecurityGroupAvailable,
                ["elb"] => CloudAssertion::ElbAvailable,
                other => return Err(err(line, format!("unknown resource `{}`", other.join(" ")))),
            };
            Ok(BoundAssertion::Fixed(assertion))
        }
        // assert instance ...
        ["instance", tail @ ..] => {
            let kind = match tail {
                ["uses", "expected", "ami"] => InstanceAssertionKind::UsesExpectedAmi,
                ["matches", "expected", "configuration"] => {
                    InstanceAssertionKind::ConfigurationCorrect
                }
                ["is", "registered", "with", "elb"] => InstanceAssertionKind::RegisteredWithElb,
                ["is", "deregistered", "from", "elb"] => InstanceAssertionKind::DeregisteredFromElb,
                ["is", "terminated"] => InstanceAssertionKind::Terminated,
                other => {
                    return Err(err(
                        line,
                        format!("unknown instance check `{}`", other.join(" ")),
                    ))
                }
            };
            Ok(BoundAssertion::InstanceFromContext { kind })
        }
        // assert account has launch headroom
        ["account", "has", "launch", "headroom"] => Ok(BoundAssertion::Fixed(
            CloudAssertion::AccountHasLaunchHeadroom,
        )),
        other => Err(err(
            line,
            format!("unrecognised assertion `{}`", other.join(" ")),
        )),
    }
}

fn parse_count(token: &str, line: usize) -> Result<BoundAssertion, SpecError> {
    if let Some(field) = token.strip_prefix('$') {
        if field.is_empty() {
            return Err(err(line, "`$` must be followed by a field name"));
        }
        Ok(BoundAssertion::VersionCountFromField {
            field: field.to_string(),
        })
    } else if token == "expected" || token == "n" {
        Ok(BoundAssertion::VersionCountFromEnv)
    } else {
        Ok(BoundAssertion::Fixed(
            CloudAssertion::AsgHasInstancesWithVersion {
                count: parse_number(token, line)?,
            },
        ))
    }
}

fn parse_number(token: &str, line: usize) -> Result<u32, SpecError> {
    token
        .parse()
        .map_err(|_| err(line, format!("expected a number, found `{token}`")))
}

/// Parses a whole library specification: `on <activity>:` headers followed
/// by indented assertion lines. Blank lines and `#` comments are ignored.
///
/// # Errors
///
/// Reports the first malformed line with its line number.
pub fn parse_library(text: &str) -> Result<AssertionLibrary, SpecError> {
    let mut lib = AssertionLibrary::new();
    let mut current: Option<(String, Vec<BoundAssertion>)> = None;
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        if let Some(header) = trimmed.strip_prefix("on ") {
            let activity = header
                .strip_suffix(':')
                .ok_or_else(|| err(line_no, "binding header must end with `:`"))?
                .trim();
            if activity.is_empty() {
                return Err(err(line_no, "binding header names no activity"));
            }
            if let Some((activity, assertions)) = current.take() {
                lib.bind(activity, assertions);
            }
            current = Some((activity.to_string(), Vec::new()));
        } else if trimmed.starts_with("assert") {
            let assertion = parse_assertion_at(trimmed, line_no)?;
            match &mut current {
                Some((_, assertions)) => assertions.push(assertion),
                None => {
                    return Err(err(
                        line_no,
                        "assertion outside any `on <activity>:` binding",
                    ))
                }
            }
        } else {
            return Err(err(line_no, format!("unrecognised line `{trimmed}`")));
        }
    }
    if let Some((activity, assertions)) = current.take() {
        lib.bind(activity, assertions);
    }
    Ok(lib)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_fixed_form() {
        let cases = [
            (
                "assert asg has exactly 4 instances",
                CloudAssertion::AsgInstanceCount { count: 4 },
            ),
            (
                "assert the ASG has at least 3 active instances",
                CloudAssertion::AsgActiveCountAtLeast { count: 3 },
            ),
            (
                "assert asg desired capacity is 20",
                CloudAssertion::AsgDesiredCapacity { count: 20 },
            ),
            (
                "assert the asg uses the expected launch configuration",
                CloudAssertion::AsgLaunchConfigCorrect,
            ),
            (
                "assert launch configuration uses the expected ami",
                CloudAssertion::LaunchConfigUsesAmi,
            ),
            (
                "assert launch config uses the expected key pair",
                CloudAssertion::LaunchConfigUsesKeyPair,
            ),
            (
                "assert launch configuration uses the expected security group",
                CloudAssertion::LaunchConfigUsesSecurityGroup,
            ),
            (
                "assert launch configuration uses the expected instance type",
                CloudAssertion::LaunchConfigUsesInstanceType,
            ),
            (
                "assert the expected AMI is available",
                CloudAssertion::AmiAvailable,
            ),
            (
                "assert the expected key pair is available",
                CloudAssertion::KeyPairAvailable,
            ),
            (
                "assert the expected security group is available",
                CloudAssertion::SecurityGroupAvailable,
            ),
            (
                "assert the expected ELB is available",
                CloudAssertion::ElbAvailable,
            ),
            (
                "assert account has launch headroom",
                CloudAssertion::AccountHasLaunchHeadroom,
            ),
            (
                "assert system has 4 instances with the new version",
                CloudAssertion::AsgHasInstancesWithVersion { count: 4 },
            ),
        ];
        for (spec, want) in cases {
            match parse_assertion(spec) {
                Ok(BoundAssertion::Fixed(got)) => assert_eq!(got, want, "{spec}"),
                other => panic!("{spec}: {other:?}"),
            }
        }
    }

    #[test]
    fn parses_field_and_env_counts() {
        assert_eq!(
            parse_assertion("assert system has $done instances with the new version").unwrap(),
            BoundAssertion::VersionCountFromField {
                field: "done".to_string()
            }
        );
        assert_eq!(
            parse_assertion("assert system has the expected instances with the new version")
                .unwrap(),
            BoundAssertion::VersionCountFromEnv
        );
    }

    #[test]
    fn parses_instance_checks() {
        let cases = [
            (
                "assert the instance uses the expected ami",
                InstanceAssertionKind::UsesExpectedAmi,
            ),
            (
                "assert the instance matches the expected configuration",
                InstanceAssertionKind::ConfigurationCorrect,
            ),
            (
                "assert the instance is registered with the ELB",
                InstanceAssertionKind::RegisteredWithElb,
            ),
            (
                "assert the instance is deregistered from the elb",
                InstanceAssertionKind::DeregisteredFromElb,
            ),
            (
                "assert the instance is terminated",
                InstanceAssertionKind::Terminated,
            ),
        ];
        for (spec, want) in cases {
            match parse_assertion(spec) {
                Ok(BoundAssertion::InstanceFromContext { kind }) => {
                    assert_eq!(kind, want, "{spec}")
                }
                other => panic!("{spec}: {other:?}"),
            }
        }
    }

    #[test]
    fn rejects_malformed_specs() {
        for bad in [
            "asg has 4 instances",                                // missing `assert`
            "assert asg has exactly four instances",              // non-numeric
            "assert system has $ instances with the new version", // empty field
            "assert launch configuration uses the expected kernel",
            "assert the instance explodes",
            "assert nothing at all",
        ] {
            assert!(parse_assertion(bad).is_err(), "{bad} should fail");
        }
    }

    #[test]
    fn library_parses_bindings_with_comments() {
        let lib = parse_library(
            r#"
# post-condition of the LC update
on update-launch-configuration:
    assert asg uses the expected launch configuration
    assert launch configuration uses the expected ami

on terminate-old-instance:
    assert the instance is terminated
"#,
        )
        .unwrap();
        assert_eq!(lib.bindings().len(), 2);
        assert_eq!(lib.for_activity("update-launch-configuration").len(), 2);
        assert_eq!(lib.for_activity("terminate-old-instance").len(), 1);
    }

    #[test]
    fn library_errors_carry_line_numbers() {
        let e = parse_library("on a:\n    assert bogus thing\n").unwrap_err();
        assert_eq!(e.line, 2);
        let e = parse_library("assert account has launch headroom\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("outside"));
        let e = parse_library("on missing-colon\n").unwrap_err();
        assert_eq!(e.line, 1);
    }

    #[test]
    fn dsl_can_express_the_rolling_upgrade_library() {
        // The curated bindings of the case study, written in the DSL.
        let lib = parse_library(
            r#"
on update-launch-configuration:
    assert asg uses the expected launch configuration
    assert launch configuration uses the expected ami
on remove-and-deregister-old-instance-from-elb:
    assert the instance is deregistered from the elb
on terminate-old-instance:
    assert the instance is terminated
on new-instance-ready-and-registered-with-elb:
    assert the instance uses the expected ami
    assert the instance matches the expected configuration
    assert the instance is registered with the elb
    assert system has $done instances with the new version
on rolling-upgrade-task-completed:
    assert system has the expected instances with the new version
    assert asg uses the expected launch configuration
    assert launch configuration uses the expected ami
    assert launch configuration uses the expected key pair
    assert launch configuration uses the expected security group
    assert launch configuration uses the expected instance type
    assert the expected ami is available
    assert the expected key pair is available
    assert the expected security group is available
    assert the expected elb is available
"#,
        )
        .unwrap();
        assert_eq!(lib.bindings().len(), 5);
        assert_eq!(lib.for_activity("rolling-upgrade-task-completed").len(), 10);
    }
}
