//! The consistent-API layer (Section IV of the paper).
//!
//! "To be resilient against AWS API inconsistency we also implemented a
//! consistent AWS API layer. This includes an exponential retry mechanism:
//! if the supposed status of a specific cloud resource is different from our
//! expectation we retry the respective AWS API calls automatically. We also
//! introduce an API timeout mechanism: assertion evaluations are regarded as
//! failed if API calls time out."

use std::fmt;

use pod_cloud::{ApiError, Cloud};
use pod_obs::{Counter, Histogram};
use pod_sim::{SimDuration, SimTime};

/// Retry/timeout policy of the consistent layer.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Maximum number of retries after the first attempt.
    pub max_retries: u32,
    /// Backoff before the first retry; doubles each time (exponential).
    pub base_backoff: SimDuration,
    /// Multiplier applied to the backoff after each retry.
    pub multiplier: f64,
    /// Total wall-clock budget; exceeding it fails the call with
    /// [`ConsistentError::Timeout`]. The paper sets this from the 95th
    /// percentile of measured call latencies.
    pub timeout: SimDuration,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_retries: 5,
            base_backoff: SimDuration::from_millis(200),
            multiplier: 2.0,
            timeout: SimDuration::from_secs(15),
        }
    }
}

/// An error from the consistent layer.
#[derive(Debug, Clone, PartialEq)]
pub enum ConsistentError {
    /// The call (including retries) exceeded the policy timeout.
    Timeout {
        /// How long the call ran before being abandoned.
        elapsed: SimDuration,
    },
    /// A non-retryable API error, or retries were exhausted on a retryable
    /// one.
    Api(ApiError),
    /// The expectation predicate never held within the retry budget.
    ExpectationNotMet {
        /// Number of attempts made.
        attempts: u32,
    },
}

impl fmt::Display for ConsistentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConsistentError::Timeout { elapsed } => {
                write!(f, "API call timed out after {elapsed}")
            }
            ConsistentError::Api(e) => write!(f, "API error: {e}"),
            ConsistentError::ExpectationNotMet { attempts } => {
                write!(f, "expected state not observed after {attempts} attempts")
            }
        }
    }
}

impl std::error::Error for ConsistentError {}

impl From<ApiError> for ConsistentError {
    fn from(e: ApiError) -> Self {
        ConsistentError::Api(e)
    }
}

/// A [`Cloud`] wrapper adding exponential retry and timeouts.
///
/// # Examples
///
/// ```
/// use pod_assert::{ConsistentApi, RetryPolicy};
/// use pod_cloud::{Cloud, CloudConfig};
/// use pod_sim::{Clock, SimRng};
///
/// let cloud = Cloud::new(Clock::new(), SimRng::seed_from(3), CloudConfig::default());
/// let ami = cloud.admin_create_ami("app", "1.0");
/// let api = ConsistentApi::new(cloud.clone(), RetryPolicy::default());
///
/// // Read-until: retries stale reads until the predicate holds.
/// let got = api
///     .read_until(|c| c.describe_ami(&ami), |a| a.available)
///     .unwrap();
/// assert_eq!(got.version, "1.0");
/// ```
#[derive(Debug, Clone)]
pub struct ConsistentApi {
    cloud: Cloud,
    policy: RetryPolicy,
    /// When `false`, calls pass straight through (the ablation baseline).
    retries_enabled: bool,
    metrics: ConsistentMetrics,
}

/// Cached handles for the consistent-layer metrics.
#[derive(Debug, Clone)]
struct ConsistentMetrics {
    calls: Counter,
    retries: Counter,
    timeouts: Counter,
    expectation_failures: Counter,
    converge_us: Histogram,
}

impl ConsistentApi {
    /// Wraps a cloud handle with the given policy.
    pub fn new(cloud: Cloud, policy: RetryPolicy) -> ConsistentApi {
        let obs = cloud.obs();
        let metrics = ConsistentMetrics {
            calls: obs.counter("consistent.calls"),
            retries: obs.counter("consistent.retries"),
            timeouts: obs.counter("consistent.timeouts"),
            expectation_failures: obs.counter("consistent.expectation_failures"),
            converge_us: obs.histogram("consistent.converge_us", pod_obs::LATENCY_BOUNDS_US),
        };
        ConsistentApi {
            cloud,
            policy,
            retries_enabled: true,
            metrics,
        }
    }

    /// Disables retries (used by the `ablation_consistent_api` bench).
    pub fn without_retries(mut self) -> ConsistentApi {
        self.retries_enabled = false;
        self
    }

    /// The underlying cloud handle.
    pub fn cloud(&self) -> &Cloud {
        &self.cloud
    }

    /// The active policy.
    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    /// Executes `call`, retrying transient API errors with exponential
    /// backoff, within the policy timeout.
    ///
    /// # Errors
    ///
    /// [`ConsistentError::Api`] on non-retryable errors or exhausted
    /// retries, [`ConsistentError::Timeout`] when the budget is exceeded.
    pub fn execute<T>(
        &self,
        mut call: impl FnMut(&Cloud) -> Result<T, ApiError>,
    ) -> Result<T, ConsistentError> {
        self.read_until(&mut call, |_| true)
    }

    /// Executes `call` until `expect` holds on the result, retrying both
    /// transient errors and unexpected (presumed stale) reads.
    ///
    /// # Errors
    ///
    /// As [`ConsistentApi::execute`], plus
    /// [`ConsistentError::ExpectationNotMet`] when retries are exhausted
    /// while the API keeps answering successfully but unexpectedly.
    pub fn read_until<T>(
        &self,
        mut call: impl FnMut(&Cloud) -> Result<T, ApiError>,
        expect: impl Fn(&T) -> bool,
    ) -> Result<T, ConsistentError> {
        let start = self.now();
        self.metrics.calls.incr();
        let mut backoff = self.policy.base_backoff;
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            if attempts > 1 {
                self.metrics.retries.incr();
            }
            let result = call(&self.cloud);
            let elapsed = self.now().duration_since(start);
            if elapsed > self.policy.timeout {
                self.metrics.timeouts.incr();
                self.emit_retry("timeout", attempts, elapsed);
                return Err(ConsistentError::Timeout { elapsed });
            }
            match result {
                Ok(value) if expect(&value) => {
                    self.metrics.converge_us.record(elapsed.as_micros());
                    if attempts > 1 {
                        self.emit_retry("converged", attempts, elapsed);
                    }
                    return Ok(value);
                }
                Ok(_) if !self.retries_enabled || attempts > self.policy.max_retries => {
                    self.metrics.expectation_failures.incr();
                    self.emit_retry("expectation-not-met", attempts, elapsed);
                    return Err(ConsistentError::ExpectationNotMet { attempts });
                }
                Ok(_) => {}
                Err(e) if !self.retries_enabled || !e.is_retryable() => {
                    self.emit_retry("api-error", attempts, elapsed);
                    return Err(ConsistentError::Api(e));
                }
                Err(e) => {
                    if attempts > self.policy.max_retries {
                        self.emit_retry("api-error", attempts, elapsed);
                        return Err(ConsistentError::Api(e));
                    }
                }
            }
            // Back off before the next attempt; this consumes virtual time,
            // which is what makes diagnosis latency realistic.
            self.cloud.sleep(backoff);
            backoff = SimDuration::from_secs_f64(backoff.as_secs_f64() * self.policy.multiplier);
            let elapsed = self.now().duration_since(start);
            if elapsed > self.policy.timeout {
                self.metrics.timeouts.incr();
                self.emit_retry("timeout", attempts, elapsed);
                return Err(ConsistentError::Timeout { elapsed });
            }
        }
    }

    /// Emits the `consistent.retry` causal event summarising a call that
    /// needed the retry machinery (or failed). First-attempt successes stay
    /// silent so the event ring records hand-offs, not every API call.
    fn emit_retry(&self, outcome: &str, attempts: u32, elapsed: SimDuration) {
        let emitted = self.cloud.obs().event("consistent.retry", outcome);
        emitted.attr("attempts", attempts);
        emitted.attr("elapsed_ms", elapsed.as_millis());
    }

    fn now(&self) -> SimTime {
        self.cloud.clock().now()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pod_cloud::CloudConfig;
    use pod_sim::{Clock, LatencyModel, SimRng};

    fn cloud_with(stale_prob: f64, failure_prob: f64) -> Cloud {
        Cloud::new(
            Clock::new(),
            SimRng::seed_from(11),
            CloudConfig {
                stale_read_prob: stale_prob,
                api_failure_prob: failure_prob,
                api_latency: LatencyModel::fixed_millis(80),
                ..CloudConfig::default()
            },
        )
    }

    #[test]
    fn passthrough_on_success() {
        let cloud = cloud_with(0.0, 0.0);
        let ami = cloud.admin_create_ami("a", "1");
        let api = ConsistentApi::new(cloud, RetryPolicy::default());
        let got = api.execute(|c| c.describe_ami(&ami)).unwrap();
        assert_eq!(got.version, "1");
    }

    #[test]
    fn non_retryable_error_is_immediate() {
        let cloud = cloud_with(0.0, 0.0);
        let api = ConsistentApi::new(cloud, RetryPolicy::default());
        let t0 = api.cloud().clock().now();
        let err = api
            .execute(|c| c.describe_ami(&pod_cloud::AmiId::new("ami-none")))
            .unwrap_err();
        assert!(matches!(
            err,
            ConsistentError::Api(ApiError::NotFound { .. })
        ));
        // Only one call's worth of latency consumed (no backoff).
        let dt = api.cloud().clock().now() - t0;
        assert!(dt < SimDuration::from_millis(100), "elapsed {dt}");
    }

    #[test]
    fn retries_transient_failures() {
        let cloud = cloud_with(0.0, 0.6);
        let ami = cloud.admin_create_ami("a", "1");
        let api = ConsistentApi::new(
            cloud,
            RetryPolicy {
                max_retries: 20,
                timeout: SimDuration::from_secs(120),
                ..RetryPolicy::default()
            },
        );
        // With 60% failure probability and 20 retries, success is near-certain.
        let got = api.execute(|c| c.describe_ami(&ami)).unwrap();
        assert_eq!(got.version, "1");
    }

    #[test]
    fn read_until_masks_stale_reads() {
        let cloud = cloud_with(0.9, 0.0); // almost every read is stale
        let asg_setup = {
            let ami = cloud.admin_create_ami("a", "1");
            let sg = cloud.admin_create_security_group("sg", &[80]);
            let kp = cloud.admin_create_key_pair("kp");
            let lc = cloud.admin_create_launch_config("lc", ami, "m1.small", kp, sg);
            cloud.admin_create_asg("g", lc, 1, 10, 2, None)
        };
        cloud
            .update_asg(
                &asg_setup,
                pod_cloud::AsgUpdate {
                    desired_capacity: Some(3),
                    ..pod_cloud::AsgUpdate::default()
                },
            )
            .unwrap();
        let api = ConsistentApi::new(
            cloud,
            RetryPolicy {
                max_retries: 30,
                timeout: SimDuration::from_secs(300),
                ..RetryPolicy::default()
            },
        );
        let got = api
            .read_until(|c| c.describe_asg(&asg_setup), |g| g.desired_capacity == 3)
            .unwrap();
        assert_eq!(got.desired_capacity, 3);
    }

    #[test]
    fn expectation_not_met_when_state_truly_differs() {
        let cloud = cloud_with(0.0, 0.0);
        let ami = cloud.admin_create_ami("a", "1");
        let api = ConsistentApi::new(
            cloud,
            RetryPolicy {
                max_retries: 2,
                timeout: SimDuration::from_secs(60),
                ..RetryPolicy::default()
            },
        );
        let err = api
            .read_until(|c| c.describe_ami(&ami), |a| a.version == "2")
            .unwrap_err();
        assert_eq!(err, ConsistentError::ExpectationNotMet { attempts: 3 });
    }

    #[test]
    fn timeout_fires_on_slow_convergence() {
        let cloud = cloud_with(0.0, 1.0); // every call fails transiently
        let ami = cloud.admin_create_ami("a", "1");
        let api = ConsistentApi::new(
            cloud,
            RetryPolicy {
                max_retries: 100,
                base_backoff: SimDuration::from_millis(500),
                multiplier: 2.0,
                timeout: SimDuration::from_secs(3),
            },
        );
        let err = api.execute(|c| c.describe_ami(&ami)).unwrap_err();
        assert!(matches!(err, ConsistentError::Timeout { .. }), "{err:?}");
    }

    #[test]
    fn disabled_retries_surface_raw_errors() {
        let cloud = cloud_with(0.0, 1.0);
        let ami = cloud.admin_create_ami("a", "1");
        let api = ConsistentApi::new(cloud, RetryPolicy::default()).without_retries();
        let err = api.execute(|c| c.describe_ami(&ami)).unwrap_err();
        assert!(matches!(err, ConsistentError::Api(ApiError::Internal(_))));
    }
}
