//! The expected environment: what the configuration repository says the
//! system *should* look like after (each stage of) the operation.

use pod_cloud::{AmiId, AsgName, ElbName, KeyPairName, LaunchConfigName, SecurityGroupId};

/// Expected state of the upgraded cluster, shared by assertions and
/// diagnostic tests.
///
/// The paper's assertion evaluation consults "configuration repositories to
/// check the configuration values"; this struct is that repository for one
/// operation. The evaluation's second false-positive class — a concurrent
/// thread changing the "should-be" number — is reproduced by mutating
/// [`ExpectedEnv::expected_count`] from an interference operation while an
/// assertion is mid-flight.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExpectedEnv {
    /// The ASG being upgraded.
    pub asg: AsgName,
    /// The load balancer fronting it.
    pub elb: ElbName,
    /// The launch configuration the upgrade installed.
    pub launch_config: LaunchConfigName,
    /// The AMI every new instance must use.
    pub expected_ami: AmiId,
    /// The application version baked into that AMI.
    pub expected_version: String,
    /// The key pair instances must be configured with.
    pub expected_key_pair: KeyPairName,
    /// The security group instances must be in.
    pub expected_security_group: SecurityGroupId,
    /// The instance type new instances must have.
    pub expected_instance_type: String,
    /// The number of instances the cluster should hold (the paper's `N`).
    pub expected_count: u32,
}

impl ExpectedEnv {
    /// Renders the instantiation variables used when a fault tree is
    /// selected, e.g. `N` and the ASG name.
    pub fn variables(&self) -> Vec<(String, String)> {
        vec![
            ("ASG".to_string(), self.asg.to_string()),
            ("ELB".to_string(), self.elb.to_string()),
            ("LC".to_string(), self.launch_config.to_string()),
            ("AMI".to_string(), self.expected_ami.to_string()),
            ("VERSION".to_string(), self.expected_version.clone()),
            ("KEYPAIR".to_string(), self.expected_key_pair.to_string()),
            ("SG".to_string(), self.expected_security_group.to_string()),
            ("TYPE".to_string(), self.expected_instance_type.clone()),
            ("N".to_string(), self.expected_count.to_string()),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variables_cover_all_parameters() {
        let env = ExpectedEnv {
            asg: AsgName::new("app-asg"),
            elb: ElbName::new("front"),
            launch_config: LaunchConfigName::new("lc-v2"),
            expected_ami: AmiId::new("ami-abc"),
            expected_version: "2.0".into(),
            expected_key_pair: KeyPairName::new("prod"),
            expected_security_group: SecurityGroupId::new("sg-1"),
            expected_instance_type: "m1.small".into(),
            expected_count: 4,
        };
        let vars = env.variables();
        assert_eq!(vars.len(), 9);
        assert!(vars.contains(&("N".to_string(), "4".to_string())));
        assert!(vars.contains(&("ASG".to_string(), "app-asg".to_string())));
    }
}
