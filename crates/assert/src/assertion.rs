//! The pre-defined assertion library.
//!
//! Assertions capture "the expected outcomes of each intermediary step".
//! High-level assertions check the overall system ("assert the system has N
//! instances with the new version"); low-level assertions check one node or
//! one configuration value. Each assertion evaluates cloud state through the
//! consistent API layer and returns a typed outcome.

use pod_cloud::{InstanceId, InstanceState};

use crate::consistent::{ConsistentApi, ConsistentError};
use crate::env::ExpectedEnv;

/// Whether an assertion inspects the whole system or a single node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AssertionLevel {
    /// System-wide ("the ASG has N instances of version V").
    High,
    /// Node- or value-specific ("instance i-x uses AMI a").
    Low,
}

/// The outcome of evaluating one assertion.
#[derive(Debug, Clone, PartialEq)]
pub enum AssertionOutcome {
    /// The asserted condition holds.
    Passed,
    /// The condition does not hold (or evaluation timed out, which the
    /// paper's implementation also counts as a failure).
    Failed {
        /// Human-readable cause, embedded in the assertion log line.
        reason: String,
    },
}

impl AssertionOutcome {
    /// Whether the assertion failed.
    pub fn is_failure(&self) -> bool {
        matches!(self, AssertionOutcome::Failed { .. })
    }
}

/// One assertion from the pre-defined library. Variables (the ASG name, N,
/// the expected AMI, …) are resolved against the [`ExpectedEnv`] at
/// evaluation time, mirroring the paper's fault-tree variable instantiation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CloudAssertion {
    /// The ASG has at least `count` `InService` instances running the
    /// expected version — the paper's flagship high-level assertion.
    AsgHasInstancesWithVersion {
        /// The required number of up-to-date instances.
        count: u32,
    },
    /// The ASG has exactly `count` active instances.
    AsgInstanceCount {
        /// The required instance count.
        count: u32,
    },
    /// The ASG's desired capacity equals `count` (detects concurrent
    /// scale-in/out operations).
    AsgDesiredCapacity {
        /// The expected desired capacity.
        count: u32,
    },
    /// The ASG has at least `count` active instances — the process-aware
    /// periodic health check (the floor accounts for in-flight
    /// replacements).
    AsgActiveCountAtLeast {
        /// The minimum active-instance count.
        count: u32,
    },
    /// The ASG points at the expected launch configuration.
    AsgLaunchConfigCorrect,
    /// Every active instance launched from the expected launch
    /// configuration matches the full expected configuration (version, AMI,
    /// key pair, security group, instance type). This is the fault-scoped
    /// repair check: it ignores instances from older launch configurations
    /// that a still-running operation has yet to replace, so it can pass
    /// mid-operation — unlike the whole-ASG count assertions.
    LaunchConfigInstancesConsistent,
    /// The launch configuration uses the expected AMI.
    LaunchConfigUsesAmi,
    /// The launch configuration uses the expected key pair.
    LaunchConfigUsesKeyPair,
    /// The launch configuration uses the expected security group.
    LaunchConfigUsesSecurityGroup,
    /// The launch configuration uses the expected instance type.
    LaunchConfigUsesInstanceType,
    /// The expected AMI exists and is available.
    AmiAvailable,
    /// The expected key pair exists.
    KeyPairAvailable,
    /// The expected security group exists.
    SecurityGroupAvailable,
    /// The ELB is up and serving.
    ElbAvailable,
    /// A specific instance runs the expected AMI (low-level double-check).
    InstanceUsesAmi {
        /// The instance to inspect.
        instance: InstanceId,
    },
    /// A specific instance matches the whole expected configuration — AMI,
    /// key pair, security group and instance type (the paper's "check for
    /// subtle errors … in the configuration").
    InstanceConfigurationCorrect {
        /// The instance to inspect.
        instance: InstanceId,
    },
    /// A specific instance is `InService`.
    InstanceInService {
        /// The instance to inspect.
        instance: InstanceId,
    },
    /// A specific instance is registered with the ELB.
    InstanceRegisteredWithElb {
        /// The instance to inspect.
        instance: InstanceId,
    },
    /// A specific instance is no longer registered with the ELB.
    InstanceDeregisteredFromElb {
        /// The instance to inspect.
        instance: InstanceId,
    },
    /// A specific instance has terminated.
    InstanceTerminated {
        /// The instance to inspect.
        instance: InstanceId,
    },
    /// The account is below its instance limit (headroom ≥ 1).
    AccountHasLaunchHeadroom,
}

impl CloudAssertion {
    /// A stable key identifying the assertion *kind* — the lookup key for
    /// selecting the fault tree when this assertion fails ("there is one
    /// fault tree per assertion").
    pub fn key(&self) -> &'static str {
        match self {
            CloudAssertion::AsgHasInstancesWithVersion { .. } => "asg-has-n-instances-with-version",
            CloudAssertion::AsgInstanceCount { .. } => "asg-instance-count",
            CloudAssertion::AsgDesiredCapacity { .. } => "asg-desired-capacity",
            CloudAssertion::AsgActiveCountAtLeast { .. } => "asg-active-count-at-least",
            CloudAssertion::AsgLaunchConfigCorrect => "asg-launch-config-correct",
            CloudAssertion::LaunchConfigInstancesConsistent => "launch-config-instances-consistent",
            CloudAssertion::LaunchConfigUsesAmi => "launch-config-uses-ami",
            CloudAssertion::LaunchConfigUsesKeyPair => "launch-config-uses-key-pair",
            CloudAssertion::LaunchConfigUsesSecurityGroup => "launch-config-uses-security-group",
            CloudAssertion::LaunchConfigUsesInstanceType => "launch-config-uses-instance-type",
            CloudAssertion::AmiAvailable => "ami-available",
            CloudAssertion::KeyPairAvailable => "key-pair-available",
            CloudAssertion::SecurityGroupAvailable => "security-group-available",
            CloudAssertion::ElbAvailable => "elb-available",
            CloudAssertion::InstanceUsesAmi { .. } => "instance-uses-ami",
            CloudAssertion::InstanceConfigurationCorrect { .. } => "instance-configuration-correct",
            CloudAssertion::InstanceInService { .. } => "instance-in-service",
            CloudAssertion::InstanceRegisteredWithElb { .. } => "instance-registered-with-elb",
            CloudAssertion::InstanceDeregisteredFromElb { .. } => "instance-deregistered-from-elb",
            CloudAssertion::InstanceTerminated { .. } => "instance-terminated",
            CloudAssertion::AccountHasLaunchHeadroom => "account-has-launch-headroom",
        }
    }

    /// High- or low-level, per the paper's classification.
    pub fn level(&self) -> AssertionLevel {
        match self {
            CloudAssertion::AsgHasInstancesWithVersion { .. }
            | CloudAssertion::AsgInstanceCount { .. }
            | CloudAssertion::AsgDesiredCapacity { .. }
            | CloudAssertion::AsgActiveCountAtLeast { .. }
            | CloudAssertion::ElbAvailable
            | CloudAssertion::AccountHasLaunchHeadroom => AssertionLevel::High,
            _ => AssertionLevel::Low,
        }
    }

    /// A human-readable description with variables instantiated.
    pub fn describe(&self, env: &ExpectedEnv) -> String {
        match self {
            CloudAssertion::AsgHasInstancesWithVersion { count } => format!(
                "the ASG {} has {count} instances with version {}",
                env.asg, env.expected_version
            ),
            CloudAssertion::AsgInstanceCount { count } => {
                format!("the ASG {} has {count} instances", env.asg)
            }
            CloudAssertion::AsgDesiredCapacity { count } => {
                format!("the ASG {} has a desired capacity of {count}", env.asg)
            }
            CloudAssertion::AsgActiveCountAtLeast { count } => {
                format!("the ASG {} has at least {count} active instances", env.asg)
            }
            CloudAssertion::AsgLaunchConfigCorrect => format!(
                "the ASG {} uses launch configuration {}",
                env.asg, env.launch_config
            ),
            CloudAssertion::LaunchConfigInstancesConsistent => format!(
                "every active instance launched from {} matches the expected configuration",
                env.launch_config
            ),
            CloudAssertion::LaunchConfigUsesAmi => format!(
                "the launch configuration {} uses AMI {}",
                env.launch_config, env.expected_ami
            ),
            CloudAssertion::LaunchConfigUsesKeyPair => format!(
                "the launch configuration {} uses key pair {}",
                env.launch_config, env.expected_key_pair
            ),
            CloudAssertion::LaunchConfigUsesSecurityGroup => format!(
                "the launch configuration {} uses security group {}",
                env.launch_config, env.expected_security_group
            ),
            CloudAssertion::LaunchConfigUsesInstanceType => format!(
                "the launch configuration {} uses instance type {}",
                env.launch_config, env.expected_instance_type
            ),
            CloudAssertion::AmiAvailable => format!("the AMI {} is available", env.expected_ami),
            CloudAssertion::KeyPairAvailable => {
                format!("the key pair {} exists", env.expected_key_pair)
            }
            CloudAssertion::SecurityGroupAvailable => {
                format!("the security group {} exists", env.expected_security_group)
            }
            CloudAssertion::ElbAvailable => format!("the ELB {} is available", env.elb),
            CloudAssertion::InstanceUsesAmi { instance } => {
                format!("the instance {instance} uses AMI {}", env.expected_ami)
            }
            CloudAssertion::InstanceConfigurationCorrect { instance } => format!(
                "the instance {instance} matches the expected configuration (AMI {}, key pair \
                 {}, security group {}, type {})",
                env.expected_ami,
                env.expected_key_pair,
                env.expected_security_group,
                env.expected_instance_type
            ),
            CloudAssertion::InstanceInService { instance } => {
                format!("the instance {instance} is in service")
            }
            CloudAssertion::InstanceRegisteredWithElb { instance } => {
                format!("the instance {instance} is registered with ELB {}", env.elb)
            }
            CloudAssertion::InstanceDeregisteredFromElb { instance } => format!(
                "the instance {instance} is deregistered from ELB {}",
                env.elb
            ),
            CloudAssertion::InstanceTerminated { instance } => {
                format!("the instance {instance} is terminating or terminated")
            }
            CloudAssertion::AccountHasLaunchHeadroom => {
                "the account has headroom to launch instances".to_string()
            }
        }
    }

    /// Evaluates the assertion against live cloud state.
    ///
    /// Timeouts and exhausted retries are reported as failures, exactly as
    /// the paper's implementation treats them.
    pub fn evaluate(&self, api: &ConsistentApi, env: &ExpectedEnv) -> AssertionOutcome {
        let result: Result<(), String> = match self {
            CloudAssertion::AsgHasInstancesWithVersion { count } => {
                let needed = *count;
                let version = env.expected_version.clone();
                match api.read_until(
                    |c| c.describe_asg_instances(&env.asg),
                    |instances| {
                        instances
                            .iter()
                            .filter(|i| i.state == InstanceState::InService && i.version == version)
                            .count() as u32
                            >= needed
                    },
                ) {
                    Ok(_) => Ok(()),
                    Err(e) => Err(self.observe_version_shortfall(api, env, needed, e)),
                }
            }
            CloudAssertion::AsgInstanceCount { count } => {
                let needed = *count;
                map(api.read_until(
                    |c| c.describe_asg(&env.asg),
                    |g| g.instances.len() as u32 == needed,
                ))
            }
            CloudAssertion::AsgDesiredCapacity { count } => {
                let needed = *count;
                map(api.read_until(
                    |c| c.describe_asg(&env.asg),
                    |g| g.desired_capacity == needed,
                ))
            }
            CloudAssertion::AsgActiveCountAtLeast { count } => {
                let needed = *count as usize;
                map(api.read_until(
                    |c| c.describe_asg_instances(&env.asg),
                    |instances| instances.iter().filter(|i| i.state.is_active()).count() >= needed,
                ))
            }
            CloudAssertion::AsgLaunchConfigCorrect => map(api.read_until(
                |c| c.describe_asg(&env.asg),
                |g| g.launch_config == env.launch_config,
            )),
            CloudAssertion::LaunchConfigInstancesConsistent => map(api.read_until(
                |c| c.describe_asg_instances(&env.asg),
                |instances| {
                    instances
                        .iter()
                        .filter(|i| {
                            i.state.is_active()
                                && i.launch_config.as_ref() == Some(&env.launch_config)
                        })
                        .all(|i| {
                            i.version == env.expected_version
                                && i.ami == env.expected_ami
                                && i.key_pair == env.expected_key_pair
                                && i.security_group == env.expected_security_group
                                && i.instance_type == env.expected_instance_type
                        })
                },
            )),
            CloudAssertion::LaunchConfigUsesAmi => map(api.read_until(
                |c| c.describe_launch_config(&env.launch_config),
                |lc| lc.ami == env.expected_ami,
            )),
            CloudAssertion::LaunchConfigUsesKeyPair => map(api.read_until(
                |c| c.describe_launch_config(&env.launch_config),
                |lc| lc.key_pair == env.expected_key_pair,
            )),
            CloudAssertion::LaunchConfigUsesSecurityGroup => map(api.read_until(
                |c| c.describe_launch_config(&env.launch_config),
                |lc| lc.security_group == env.expected_security_group,
            )),
            CloudAssertion::LaunchConfigUsesInstanceType => map(api.read_until(
                |c| c.describe_launch_config(&env.launch_config),
                |lc| lc.instance_type == env.expected_instance_type,
            )),
            CloudAssertion::AmiAvailable => {
                map(api.read_until(|c| c.describe_ami(&env.expected_ami), |a| a.available))
            }
            CloudAssertion::KeyPairAvailable => map(api.read_until(
                |c| c.describe_key_pair(&env.expected_key_pair),
                |k| k.available,
            )),
            CloudAssertion::SecurityGroupAvailable => map(api.read_until(
                |c| c.describe_security_group(&env.expected_security_group),
                |s| s.available,
            )),
            CloudAssertion::ElbAvailable => {
                map(api.read_until(|c| c.describe_elb(&env.elb), |e| e.available))
            }
            CloudAssertion::InstanceUsesAmi { instance } => map(api.read_until(
                |c| c.describe_instance(instance),
                |i| i.ami == env.expected_ami,
            )),
            CloudAssertion::InstanceConfigurationCorrect { instance } => map(api.read_until(
                |c| c.describe_instance(instance),
                |i| {
                    i.ami == env.expected_ami
                        && i.key_pair == env.expected_key_pair
                        && i.security_group == env.expected_security_group
                        && i.instance_type == env.expected_instance_type
                },
            )),
            CloudAssertion::InstanceInService { instance } => map(api.read_until(
                |c| c.describe_instance(instance),
                |i| i.state == InstanceState::InService,
            )),
            CloudAssertion::InstanceRegisteredWithElb { instance } => map(api.read_until(
                |c| c.describe_elb(&env.elb),
                |e| e.registered.contains(instance),
            )),
            CloudAssertion::InstanceDeregisteredFromElb { instance } => map(api.read_until(
                |c| c.describe_elb(&env.elb),
                |e| !e.registered.contains(instance),
            )),
            CloudAssertion::InstanceTerminated { instance } => map(api.read_until(
                |c| c.describe_instance(instance),
                |i| {
                    matches!(
                        i.state,
                        InstanceState::Terminating | InstanceState::Terminated
                    )
                },
            )),
            CloudAssertion::AccountHasLaunchHeadroom => {
                let limit = api.cloud().admin_active_instance_count();
                // A real deployment would query service quotas; the admin
                // count stands in for the quota API.
                map(api.read_until(|c| c.count_active_instances(), move |used| *used <= limit))
            }
        };
        match result {
            Ok(()) => AssertionOutcome::Passed,
            Err(reason) => AssertionOutcome::Failed { reason },
        }
    }

    /// On a version-count failure, fetch one authoritative-ish observation
    /// so the failure reason carries the observed shortfall.
    fn observe_version_shortfall(
        &self,
        api: &ConsistentApi,
        env: &ExpectedEnv,
        needed: u32,
        err: ConsistentError,
    ) -> String {
        let observed = api
            .cloud()
            .describe_asg_instances(&env.asg)
            .map(|instances| {
                instances
                    .iter()
                    .filter(|i| {
                        i.state == InstanceState::InService && i.version == env.expected_version
                    })
                    .count()
            })
            .unwrap_or(0);
        match err {
            ConsistentError::Timeout { elapsed } => format!(
                "evaluation timed out after {elapsed}; observed {observed}/{needed} instances \
                 with version {}",
                env.expected_version
            ),
            _ => format!(
                "observed {observed}/{needed} in-service instances with version {}",
                env.expected_version
            ),
        }
    }
}

fn map<T>(r: Result<T, ConsistentError>) -> Result<(), String> {
    match r {
        Ok(_) => Ok(()),
        Err(e) => Err(e.to_string()),
    }
}

/// An assertion bound to a process step, possibly parameterised by fields
/// of the triggering log line (the analyst "links their assertions with the
/// operation processes").
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BoundAssertion {
    /// A fully specified assertion.
    Fixed(CloudAssertion),
    /// "Assert the system has `<field>` instances with the new version",
    /// where the count comes from a field of the triggering log line (e.g.
    /// Asgard's "3 of 4 instance relaunches done" yields `done = 3`).
    VersionCountFromField {
        /// The log field holding the count.
        field: String,
    },
    /// "Assert the system has N instances with the new version", with N
    /// taken from the expected environment at evaluation time — the final
    /// whole-cluster check.
    VersionCountFromEnv,
    /// Per-instance check against the instance id extracted from the
    /// triggering log line.
    InstanceFromContext {
        /// Which per-instance assertion to build.
        kind: InstanceAssertionKind,
    },
}

/// The per-instance assertion kinds resolvable from log context.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstanceAssertionKind {
    /// The instance runs the expected AMI.
    UsesExpectedAmi,
    /// The instance matches the whole expected configuration.
    ConfigurationCorrect,
    /// The instance is registered with the ELB.
    RegisteredWithElb,
    /// The instance has been deregistered from the ELB.
    DeregisteredFromElb,
    /// The instance has terminated.
    Terminated,
}

impl BoundAssertion {
    /// Resolves the binding into a concrete assertion using the triggering
    /// log event and the current expected instance count. Returns `None`
    /// when a required field or context is missing (e.g. a timer-triggered
    /// evaluation with no log line).
    pub fn resolve(
        &self,
        event: Option<&pod_log::LogEvent>,
        expected_count: u32,
    ) -> Option<CloudAssertion> {
        match self {
            BoundAssertion::Fixed(a) => Some(a.clone()),
            BoundAssertion::VersionCountFromField { field } => {
                let count: u32 = event?.field(field)?.parse().ok()?;
                Some(CloudAssertion::AsgHasInstancesWithVersion { count })
            }
            BoundAssertion::VersionCountFromEnv => {
                Some(CloudAssertion::AsgHasInstancesWithVersion {
                    count: expected_count,
                })
            }
            BoundAssertion::InstanceFromContext { kind } => {
                let id = event?
                    .context
                    .as_ref()
                    .and_then(|c| c.cloud_instance_id.clone())
                    .or_else(|| event?.field("instanceid").map(str::to_string))?;
                let instance = pod_cloud::InstanceId::new(id);
                Some(match kind {
                    InstanceAssertionKind::UsesExpectedAmi => {
                        CloudAssertion::InstanceUsesAmi { instance }
                    }
                    InstanceAssertionKind::ConfigurationCorrect => {
                        CloudAssertion::InstanceConfigurationCorrect { instance }
                    }
                    InstanceAssertionKind::RegisteredWithElb => {
                        CloudAssertion::InstanceRegisteredWithElb { instance }
                    }
                    InstanceAssertionKind::DeregisteredFromElb => {
                        CloudAssertion::InstanceDeregisteredFromElb { instance }
                    }
                    InstanceAssertionKind::Terminated => {
                        CloudAssertion::InstanceTerminated { instance }
                    }
                })
            }
        }
    }
}

/// Binds assertions to the process activity whose completion triggers them.
#[derive(Debug, Clone)]
pub struct AssertionBinding {
    /// The activity name (must match the rule book / model).
    pub activity: String,
    /// Assertions evaluated when the activity completes.
    pub assertions: Vec<BoundAssertion>,
}

/// The per-process assertion library: activity → assertions.
#[derive(Debug, Clone, Default)]
pub struct AssertionLibrary {
    bindings: Vec<AssertionBinding>,
}

impl AssertionLibrary {
    /// Creates an empty library.
    pub fn new() -> AssertionLibrary {
        AssertionLibrary::default()
    }

    /// Adds a binding.
    pub fn bind(&mut self, activity: impl Into<String>, assertions: Vec<BoundAssertion>) {
        self.bindings.push(AssertionBinding {
            activity: activity.into(),
            assertions,
        });
    }

    /// Convenience: binds fixed assertions.
    pub fn bind_fixed(&mut self, activity: impl Into<String>, assertions: Vec<CloudAssertion>) {
        self.bind(
            activity,
            assertions.into_iter().map(BoundAssertion::Fixed).collect(),
        );
    }

    /// Assertions bound to an activity (empty slice when none).
    pub fn for_activity(&self, activity: &str) -> &[BoundAssertion] {
        self.bindings
            .iter()
            .find(|b| b.activity == activity)
            .map(|b| b.assertions.as_slice())
            .unwrap_or(&[])
    }

    /// All bindings.
    pub fn bindings(&self) -> &[AssertionBinding] {
        &self.bindings
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consistent::RetryPolicy;
    use pod_cloud::{Cloud, CloudConfig};
    use pod_sim::{Clock, SimRng};

    fn setup() -> (ConsistentApi, ExpectedEnv, Cloud) {
        let cloud = Cloud::new(
            Clock::new(),
            SimRng::seed_from(5),
            CloudConfig {
                stale_read_prob: 0.0,
                ..CloudConfig::default()
            },
        );
        let ami = cloud.admin_create_ami("app", "2.0");
        let sg = cloud.admin_create_security_group("web", &[80]);
        let kp = cloud.admin_create_key_pair("prod");
        let elb = cloud.admin_create_elb("front");
        let lc = cloud.admin_create_launch_config(
            "lc-v2",
            ami.clone(),
            "m1.small",
            kp.clone(),
            sg.clone(),
        );
        let asg = cloud.admin_create_asg("app-asg", lc.clone(), 1, 10, 4, Some(elb.clone()));
        let env = ExpectedEnv {
            asg,
            elb,
            launch_config: lc,
            expected_ami: ami,
            expected_version: "2.0".into(),
            expected_key_pair: kp,
            expected_security_group: sg,
            expected_instance_type: "m1.small".into(),
            expected_count: 4,
        };
        let policy = RetryPolicy {
            max_retries: 3,
            timeout: pod_sim::SimDuration::from_secs(10),
            ..RetryPolicy::default()
        };
        (ConsistentApi::new(cloud.clone(), policy), env, cloud)
    }

    #[test]
    fn healthy_cluster_passes_the_headline_assertion() {
        let (api, env, _cloud) = setup();
        let a = CloudAssertion::AsgHasInstancesWithVersion { count: 4 };
        assert_eq!(a.evaluate(&api, &env), AssertionOutcome::Passed);
        assert_eq!(a.level(), AssertionLevel::High);
    }

    #[test]
    fn version_shortfall_fails_with_observation() {
        let (api, env, cloud) = setup();
        // Kill one instance; the ASG will not have replaced it yet.
        let victim = cloud.admin_describe_asg(&env.asg).unwrap().instances[0].clone();
        cloud.admin_terminate_instance(&victim);
        cloud.sleep(pod_sim::SimDuration::from_secs(60));
        // Freeze reconciliation effects by asserting a count the group
        // cannot reach within the retry budget... the replacement may have
        // booted, so assert more than desired.
        let a = CloudAssertion::AsgHasInstancesWithVersion { count: 5 };
        match a.evaluate(&api, &env) {
            AssertionOutcome::Failed { reason } => {
                assert!(reason.contains("/5"), "reason: {reason}");
            }
            other => panic!("expected failure, got {other:?}"),
        }
    }

    #[test]
    fn launch_config_assertions_detect_misconfiguration() {
        let (api, env, cloud) = setup();
        let wrong_kp = cloud.admin_create_key_pair("attacker-key");
        cloud.admin_update_launch_config(
            &env.launch_config,
            pod_cloud::LaunchConfigUpdate {
                key_pair: Some(wrong_kp),
                ..pod_cloud::LaunchConfigUpdate::default()
            },
        );
        assert!(CloudAssertion::LaunchConfigUsesKeyPair
            .evaluate(&api, &env)
            .is_failure());
        // The others still pass.
        assert_eq!(
            CloudAssertion::LaunchConfigUsesAmi.evaluate(&api, &env),
            AssertionOutcome::Passed
        );
        assert_eq!(
            CloudAssertion::LaunchConfigUsesSecurityGroup.evaluate(&api, &env),
            AssertionOutcome::Passed
        );
        assert_eq!(
            CloudAssertion::LaunchConfigUsesInstanceType.evaluate(&api, &env),
            AssertionOutcome::Passed
        );
    }

    #[test]
    fn resource_availability_assertions() {
        let (api, env, cloud) = setup();
        assert_eq!(
            CloudAssertion::AmiAvailable.evaluate(&api, &env),
            AssertionOutcome::Passed
        );
        cloud.admin_set_ami_available(&env.expected_ami, false);
        assert!(CloudAssertion::AmiAvailable
            .evaluate(&api, &env)
            .is_failure());
        cloud.admin_set_elb_available(&env.elb, false);
        assert!(CloudAssertion::ElbAvailable
            .evaluate(&api, &env)
            .is_failure());
    }

    #[test]
    fn instance_level_assertions() {
        let (api, env, cloud) = setup();
        let id = cloud.admin_describe_asg(&env.asg).unwrap().instances[0].clone();
        assert_eq!(
            CloudAssertion::InstanceInService {
                instance: id.clone()
            }
            .evaluate(&api, &env),
            AssertionOutcome::Passed
        );
        assert_eq!(
            CloudAssertion::InstanceRegisteredWithElb {
                instance: id.clone()
            }
            .evaluate(&api, &env),
            AssertionOutcome::Passed
        );
        assert!(CloudAssertion::InstanceTerminated {
            instance: id.clone()
        }
        .evaluate(&api, &env)
        .is_failure());
        cloud.admin_terminate_instance(&id);
        cloud.sleep(pod_sim::SimDuration::from_secs(120));
        assert_eq!(
            CloudAssertion::InstanceTerminated {
                instance: id.clone()
            }
            .evaluate(&api, &env),
            AssertionOutcome::Passed
        );
        assert_eq!(
            CloudAssertion::InstanceDeregisteredFromElb { instance: id }.evaluate(&api, &env),
            AssertionOutcome::Passed
        );
    }

    #[test]
    fn descriptions_instantiate_variables() {
        let (_api, env, _cloud) = setup();
        let d = CloudAssertion::AsgHasInstancesWithVersion { count: 4 }.describe(&env);
        assert!(d.contains("app-asg") && d.contains("4") && d.contains("2.0"));
    }

    #[test]
    fn library_lookup() {
        let mut lib = AssertionLibrary::new();
        lib.bind_fixed(
            "new-instance-ready",
            vec![CloudAssertion::AsgHasInstancesWithVersion { count: 4 }],
        );
        assert_eq!(lib.for_activity("new-instance-ready").len(), 1);
        assert!(lib.for_activity("unknown").is_empty());
        assert_eq!(lib.bindings().len(), 1);
    }
}
