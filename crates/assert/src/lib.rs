//! Assertion evaluation for POD-Diagnosis.
//!
//! Implements Section III.B.3 and the relevant part of Section IV of the
//! paper:
//!
//! - [`ConsistentApi`] — the consistent AWS-API layer: exponential retry on
//!   transient errors and on unexpected (presumed stale) reads, plus a
//!   timeout mechanism calibrated "at the 95% percentile";
//! - [`CloudAssertion`] — the pre-defined assertion library, high-level
//!   (whole-system) and low-level (per-node / per-value) checks whose
//!   variables are instantiated from the [`ExpectedEnv`] configuration
//!   repository;
//! - [`AssertionLibrary`] — bindings from process activities to the
//!   assertions their completion triggers;
//! - [`TimerService`] — one-off and periodic timers, the non-log trigger
//!   sources;
//! - [`AssertionEvaluator`] — the service that runs assertions, measures
//!   their (virtual-time) duration and writes paper-style assertion log
//!   lines to central storage;
//! - [`dsl`] — the assertion specification language the paper names as
//!   future work, compiling analyst-written text into assertion bindings.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod assertion;
mod consistent;
pub mod dsl;
mod env;
mod evaluator;
mod timer;

pub use assertion::{
    AssertionBinding, AssertionLevel, AssertionLibrary, AssertionOutcome, BoundAssertion,
    CloudAssertion, InstanceAssertionKind,
};
pub use consistent::{ConsistentApi, ConsistentError, RetryPolicy};
pub use env::ExpectedEnv;
pub use evaluator::{AssertionEvaluator, AssertionRecord, AssertionTrigger};
pub use timer::{TimerId, TimerService};
