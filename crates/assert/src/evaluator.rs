//! The assertion-evaluation service: runs assertions, times them, and logs
//! their results to central storage in the paper's assertion-log shape.

use pod_log::{LogEvent, LogStorage, ProcessContext, Severity, StepOutcome};
use pod_sim::{SimDuration, SimTime};

use crate::assertion::{AssertionOutcome, CloudAssertion};
use crate::consistent::ConsistentApi;
use crate::env::ExpectedEnv;

/// What triggered an assertion evaluation — used both for the result log
/// and by diagnosis (timer-triggered evaluations carry less context, the
/// paper's first wrong-diagnosis class).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AssertionTrigger {
    /// A log line completed an activity.
    Log,
    /// A one-off timer fired (no log line appeared in time).
    OneOffTimer,
    /// The operation-wide periodic timer fired.
    PeriodicTimer,
    /// Diagnosis requested an on-demand check.
    OnDemand,
}

impl AssertionTrigger {
    /// The tag recorded in the assertion log.
    pub fn tag(&self) -> &'static str {
        match self {
            AssertionTrigger::Log => "trigger:log",
            AssertionTrigger::OneOffTimer => "trigger:oneoff-timer",
            AssertionTrigger::PeriodicTimer => "trigger:periodic-timer",
            AssertionTrigger::OnDemand => "trigger:on-demand",
        }
    }
}

/// A completed assertion evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct AssertionRecord {
    /// The assertion that was evaluated.
    pub assertion: CloudAssertion,
    /// Its instantiated description.
    pub description: String,
    /// The outcome.
    pub outcome: AssertionOutcome,
    /// What triggered the evaluation.
    pub trigger: AssertionTrigger,
    /// When evaluation started.
    pub started_at: SimTime,
    /// How long it took (virtual time, dominated by API calls/retries).
    pub duration: SimDuration,
    /// The process context the evaluation ran under, if any.
    pub context: Option<ProcessContext>,
    /// The `assertion.result` causal event emitted for this evaluation, so
    /// the engine can parent a detection on it. `Some` only for failures:
    /// passing evaluations are counted (`assertion.passed`), not traced.
    pub event: Option<pod_obs::EventId>,
}

impl AssertionRecord {
    /// Whether the evaluation failed.
    pub fn is_failure(&self) -> bool {
        self.outcome.is_failure()
    }
}

/// The assertion-evaluation service.
///
/// # Examples
///
/// ```
/// use pod_assert::{
///     AssertionEvaluator, AssertionTrigger, CloudAssertion, ConsistentApi, ExpectedEnv,
///     RetryPolicy,
/// };
/// use pod_cloud::{Cloud, CloudConfig};
/// use pod_log::LogStorage;
/// use pod_sim::{Clock, SimRng};
///
/// let cloud = Cloud::new(Clock::new(), SimRng::seed_from(2), CloudConfig::default());
/// let ami = cloud.admin_create_ami("app", "2.0");
/// let sg = cloud.admin_create_security_group("web", &[80]);
/// let kp = cloud.admin_create_key_pair("prod");
/// let elb = cloud.admin_create_elb("front");
/// let lc = cloud.admin_create_launch_config("lc", ami.clone(), "m1.small", kp.clone(), sg.clone());
/// let asg = cloud.admin_create_asg("g", lc.clone(), 1, 10, 2, Some(elb.clone()));
/// let env = ExpectedEnv {
///     asg, elb, launch_config: lc, expected_ami: ami, expected_version: "2.0".into(),
///     expected_key_pair: kp, expected_security_group: sg,
///     expected_instance_type: "m1.small".into(), expected_count: 2,
/// };
/// let storage = LogStorage::new();
/// let eval = AssertionEvaluator::new(
///     ConsistentApi::new(cloud, RetryPolicy::default()), storage.clone());
///
/// let record = eval.evaluate(
///     &CloudAssertion::AsgHasInstancesWithVersion { count: 2 },
///     &env, AssertionTrigger::Log, None);
/// assert!(!record.is_failure());
/// assert_eq!(storage.len(), 1); // the result was logged
/// ```
#[derive(Debug, Clone)]
pub struct AssertionEvaluator {
    api: ConsistentApi,
    storage: LogStorage,
}

impl AssertionEvaluator {
    /// Creates an evaluator writing result lines to `storage`.
    pub fn new(api: ConsistentApi, storage: LogStorage) -> AssertionEvaluator {
        AssertionEvaluator { api, storage }
    }

    /// The consistent API the evaluator uses.
    pub fn api(&self) -> &ConsistentApi {
        &self.api
    }

    /// Evaluates one assertion, records the result log line and returns the
    /// record.
    pub fn evaluate(
        &self,
        assertion: &CloudAssertion,
        env: &ExpectedEnv,
        trigger: AssertionTrigger,
        context: Option<&ProcessContext>,
    ) -> AssertionRecord {
        let obs = self.api.cloud().obs().clone();
        let started_at = self.api.cloud().clock().now();
        let outcome = assertion.evaluate(&self.api, env);
        let finished = self.api.cloud().clock().now();
        let duration = finished.duration_since(started_at);
        // Outcome-conditional tracing: a passing assertion bumps a counter
        // (its latency is already in the API-call histograms) while a
        // failing one retroactively materialises the `assertion.eval` span
        // and the `assertion.result` event diagnosis parents detections
        // on. At gateway scale passes outnumber failures ten to one, so
        // the healthy path stays allocation-free.
        let event = if outcome.is_failure() {
            obs.record_span(
                "assertion.eval",
                started_at,
                vec![
                    ("trigger", trigger.tag().to_string()),
                    ("outcome", "failed".to_string()),
                ],
            );
            let mut attrs = vec![
                ("trigger", trigger.tag().to_string()),
                ("outcome", "failed".to_string()),
                ("duration_ms", duration.as_millis().to_string()),
            ];
            if let Some(step) = context.and_then(|c| c.step_id.as_deref()) {
                attrs.push(("step", step.to_string()));
            }
            obs.event_with("assertion.result", assertion.key(), attrs)
        } else {
            obs.counter("assertion.passed").incr();
            None
        };
        let description = assertion.describe(env);
        let record = AssertionRecord {
            assertion: assertion.clone(),
            description: description.clone(),
            outcome: outcome.clone(),
            trigger: trigger.clone(),
            started_at,
            duration,
            context: context.cloned(),
            event,
        };
        self.storage.append(self.render(&record));
        record
    }

    /// Renders the paper-style assertion log line.
    fn render(&self, record: &AssertionRecord) -> LogEvent {
        let (verdict, severity) = match &record.outcome {
            AssertionOutcome::Passed => ("holds".to_string(), Severity::Info),
            AssertionOutcome::Failed { reason } => (format!("FAILED: {reason}"), Severity::Error),
        };
        let message = match &record.context {
            Some(ctx) => format!(
                "[assertion] [Task:{}] [Step:{}] Assertion that {} {verdict}",
                ctx.process_instance_id,
                ctx.step_id.as_deref().unwrap_or("-"),
                record.description,
            ),
            None => format!(
                "[assertion] Assertion that {} {verdict}",
                record.description
            ),
        };
        let mut event = LogEvent::new(
            record.started_at + record.duration,
            "assertion-evaluation.log",
            message,
        )
        .with_type("assertion")
        .with_tag(record.trigger.tag())
        .with_severity(severity)
        .with_field("duration_ms", record.duration.as_millis().to_string());
        if let Some(ctx) = &record.context {
            let ctx = ctx.clone().with_outcome(if record.is_failure() {
                StepOutcome::Failure
            } else {
                StepOutcome::Success
            });
            event = event.with_context(ctx);
        }
        event
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consistent::RetryPolicy;
    use pod_cloud::{Cloud, CloudConfig};
    use pod_log::LogQuery;
    use pod_sim::{Clock, SimRng};

    fn setup() -> (AssertionEvaluator, ExpectedEnv, Cloud, LogStorage) {
        let cloud = Cloud::new(
            Clock::new(),
            SimRng::seed_from(9),
            CloudConfig {
                stale_read_prob: 0.0,
                ..CloudConfig::default()
            },
        );
        let ami = cloud.admin_create_ami("app", "2.0");
        let sg = cloud.admin_create_security_group("web", &[80]);
        let kp = cloud.admin_create_key_pair("prod");
        let elb = cloud.admin_create_elb("front");
        let lc =
            cloud.admin_create_launch_config("lc", ami.clone(), "m1.small", kp.clone(), sg.clone());
        let asg = cloud.admin_create_asg("g", lc.clone(), 1, 10, 2, Some(elb.clone()));
        let env = ExpectedEnv {
            asg,
            elb,
            launch_config: lc,
            expected_ami: ami,
            expected_version: "2.0".into(),
            expected_key_pair: kp,
            expected_security_group: sg,
            expected_instance_type: "m1.small".into(),
            expected_count: 2,
        };
        let storage = LogStorage::new();
        let eval = AssertionEvaluator::new(
            ConsistentApi::new(cloud.clone(), RetryPolicy::default()),
            storage.clone(),
        );
        (eval, env, cloud, storage)
    }

    #[test]
    fn passing_evaluation_logs_info_line() {
        let (eval, env, _cloud, storage) = setup();
        let rec = eval.evaluate(
            &CloudAssertion::AsgInstanceCount { count: 2 },
            &env,
            AssertionTrigger::Log,
            None,
        );
        assert!(!rec.is_failure());
        assert!(rec.duration > SimDuration::ZERO);
        let logged = storage.snapshot();
        assert_eq!(logged.len(), 1);
        assert_eq!(logged[0].event_type, "assertion");
        assert!(logged[0].message.contains("holds"));
        assert!(logged[0].has_tag("trigger:log"));
    }

    #[test]
    fn failing_evaluation_logs_error_line_with_context() {
        let (eval, env, _cloud, storage) = setup();
        let ctx = ProcessContext::new("rolling-upgrade", "run-1").with_step("step4");
        let rec = eval.evaluate(
            &CloudAssertion::AsgInstanceCount { count: 7 },
            &env,
            AssertionTrigger::OneOffTimer,
            Some(&ctx),
        );
        assert!(rec.is_failure());
        let errors = storage.query(&LogQuery::new().with_min_severity(Severity::Error));
        assert_eq!(errors.len(), 1);
        assert!(errors[0].message.contains("FAILED"));
        assert!(errors[0].message.contains("[Step:step4]"));
        assert_eq!(
            errors[0].context.as_ref().unwrap().outcome,
            Some(StepOutcome::Failure)
        );
        assert!(errors[0].has_tag("trigger:oneoff-timer"));
    }

    #[test]
    fn evaluation_consumes_virtual_time_from_api_calls() {
        let (eval, env, cloud, _storage) = setup();
        let t0 = cloud.clock().now();
        eval.evaluate(
            &CloudAssertion::AsgHasInstancesWithVersion { count: 2 },
            &env,
            AssertionTrigger::Log,
            None,
        );
        assert!(cloud.clock().now() > t0);
    }
}
