//! One-off and periodic timers (Section III.B.3 of the paper).
//!
//! Assertion evaluation is triggered by logs, but "sometimes there is no log
//! line indicating the completion of a certain step. In such cases, we set a
//! timer to trigger the corresponding assertion evaluation after a period of
//! time." Periodic timers run for the whole operation and can be re-aligned
//! by periodic log events.

use std::collections::HashSet;

use pod_sim::{EventQueue, SimDuration, SimTime};

/// Identifier of a scheduled timer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerId(u64);

#[derive(Debug)]
struct Entry<T> {
    id: TimerId,
    payload: T,
    period: Option<SimDuration>,
}

/// A virtual-time timer wheel with one-off and periodic timers.
///
/// The owner polls [`TimerService::due`] as the clock advances; periodic
/// timers automatically reschedule.
///
/// # Examples
///
/// ```
/// use pod_assert::TimerService;
/// use pod_sim::{SimDuration, SimTime};
///
/// let mut timers = TimerService::new();
/// timers.schedule_once(SimTime::from_secs(5), "check-step-3");
/// timers.schedule_periodic(SimTime::from_secs(10), SimDuration::from_secs(10), "health");
///
/// assert!(timers.due(SimTime::from_secs(4)).is_empty());
/// let fired = timers.due(SimTime::from_secs(10));
/// assert_eq!(fired.len(), 2);
/// // The periodic timer rescheduled itself for t=20s.
/// assert_eq!(timers.due(SimTime::from_secs(20)).len(), 1);
/// ```
#[derive(Debug)]
pub struct TimerService<T> {
    queue: EventQueue<Entry<T>>,
    cancelled: HashSet<TimerId>,
    next_id: u64,
}

impl<T> Default for TimerService<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> TimerService<T> {
    /// Creates an empty timer service.
    pub fn new() -> TimerService<T> {
        TimerService {
            queue: EventQueue::new(),
            cancelled: HashSet::new(),
            next_id: 0,
        }
    }
}

impl<T: Clone> TimerService<T> {
    fn fresh_id(&mut self) -> TimerId {
        let id = TimerId(self.next_id);
        self.next_id += 1;
        id
    }

    /// Schedules a one-off timer firing at `at`.
    pub fn schedule_once(&mut self, at: SimTime, payload: T) -> TimerId {
        let id = self.fresh_id();
        self.queue.schedule(
            at,
            Entry {
                id,
                payload,
                period: None,
            },
        );
        id
    }

    /// Schedules a periodic timer first firing at `first`, then every
    /// `every` thereafter until cancelled.
    pub fn schedule_periodic(&mut self, first: SimTime, every: SimDuration, payload: T) -> TimerId {
        assert!(every > SimDuration::ZERO, "period must be positive");
        let id = self.fresh_id();
        self.queue.schedule(
            first,
            Entry {
                id,
                payload,
                period: Some(every),
            },
        );
        id
    }

    /// Cancels a timer (one-off or periodic). Safe to call twice.
    pub fn cancel(&mut self, id: TimerId) {
        self.cancelled.insert(id);
    }

    /// Re-aligns a periodic timer to a fresh phase: cancels `id` and
    /// schedules a new periodic timer at `next` — used when a periodic log
    /// event arrives and the timer should track it.
    pub fn realign(
        &mut self,
        id: TimerId,
        next: SimTime,
        every: SimDuration,
        payload: T,
    ) -> TimerId {
        self.cancel(id);
        self.schedule_periodic(next, every, payload)
    }

    /// Returns all timers due at or before `now`, rescheduling periodic
    /// ones. Fired entries report their id, due time and payload.
    pub fn due(&mut self, now: SimTime) -> Vec<(TimerId, SimTime, T)> {
        let mut fired = Vec::new();
        while let Some(at) = self.queue.peek_time() {
            if at > now {
                break;
            }
            let (at, entry) = self.queue.pop().expect("peeked entry");
            if self.cancelled.contains(&entry.id) {
                // A cancelled periodic timer is dropped permanently.
                continue;
            }
            fired.push((entry.id, at, entry.payload.clone()));
            if let Some(period) = entry.period {
                self.queue.schedule(at + period, entry);
            }
        }
        fired
    }

    /// Number of pending (scheduled, not yet cancelled-and-collected)
    /// timers.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_off_fires_once() {
        let mut t = TimerService::new();
        t.schedule_once(SimTime::from_secs(1), "x");
        assert_eq!(t.due(SimTime::from_secs(2)).len(), 1);
        assert!(t.due(SimTime::from_secs(10)).is_empty());
    }

    #[test]
    fn periodic_reschedules() {
        let mut t = TimerService::new();
        t.schedule_periodic(SimTime::from_secs(1), SimDuration::from_secs(2), "p");
        let fired = t.due(SimTime::from_secs(6));
        // t=1, 3, 5.
        assert_eq!(fired.len(), 3);
        assert_eq!(fired[2].1, SimTime::from_secs(5));
    }

    #[test]
    fn cancelled_timers_do_not_fire() {
        let mut t = TimerService::new();
        let a = t.schedule_once(SimTime::from_secs(1), "a");
        let b = t.schedule_periodic(SimTime::from_secs(1), SimDuration::from_secs(1), "b");
        t.cancel(a);
        t.cancel(b);
        assert!(t.due(SimTime::from_secs(100)).is_empty());
    }

    #[test]
    fn cancel_periodic_mid_flight() {
        let mut t = TimerService::new();
        let id = t.schedule_periodic(SimTime::from_secs(1), SimDuration::from_secs(1), "b");
        assert_eq!(t.due(SimTime::from_secs(2)).len(), 2);
        t.cancel(id);
        assert!(t.due(SimTime::from_secs(10)).is_empty());
    }

    #[test]
    fn realign_shifts_phase() {
        let mut t = TimerService::new();
        let id = t.schedule_periodic(SimTime::from_secs(10), SimDuration::from_secs(10), "h");
        // A periodic log event arrives at t=3; re-align to fire at 3+10.
        let id2 = t.realign(id, SimTime::from_secs(13), SimDuration::from_secs(10), "h");
        let fired = t.due(SimTime::from_secs(13));
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].0, id2);
        assert_eq!(fired[0].1, SimTime::from_secs(13));
    }

    #[test]
    fn due_order_is_chronological() {
        let mut t = TimerService::new();
        t.schedule_once(SimTime::from_secs(3), 3);
        t.schedule_once(SimTime::from_secs(1), 1);
        t.schedule_once(SimTime::from_secs(2), 2);
        let fired: Vec<i32> = t
            .due(SimTime::from_secs(5))
            .into_iter()
            .map(|f| f.2)
            .collect();
        assert_eq!(fired, vec![1, 2, 3]);
    }
}
