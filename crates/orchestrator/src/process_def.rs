//! The rolling-upgrade process definition: the Figure-2 model, the
//! transformation rules for Asgard-style log lines, the noise-filter
//! patterns and the default assertion bindings.
//!
//! In the paper these artefacts are produced offline (by process mining
//! plus analyst work) once per operation tool; `pod-mining` can re-derive
//! the model from logs (experiment E1), while this module provides the
//! curated versions the online engine runs with.

use pod_assert::{AssertionLibrary, BoundAssertion, CloudAssertion, InstanceAssertionKind};
use pod_faulttree::steps;
use pod_log::{Boundary, LineRule, RuleBook};
use pod_process::{ProcessModel, ProcessModelBuilder};

/// The process id used for the rolling upgrade.
pub const PROCESS_ID: &str = "rolling-upgrade";

/// Builds the Figure-2 process model: setup steps, then the per-instance
/// replacement loop, then completion.
pub fn rolling_upgrade_model() -> ProcessModel {
    let mut b = ProcessModelBuilder::new(PROCESS_ID);
    let start = b.start();
    let t_start = b.task(steps::START);
    let t_lc = b.task(steps::UPDATE_LC);
    let t_sort = b.task(steps::SORT);
    let loop_join = b.exclusive_gateway();
    let t_dereg = b.task(steps::DEREGISTER);
    let t_term = b.task(steps::TERMINATE);
    let t_wait = b.task(steps::WAIT_ASG);
    let t_ready = b.task(steps::READY);
    let loop_split = b.exclusive_gateway();
    let t_done = b.task(steps::COMPLETED);
    let end = b.end();
    b.flow(start, t_start);
    b.flow(t_start, t_lc);
    b.flow(t_lc, t_sort);
    b.flow(t_sort, loop_join);
    b.flow(loop_join, t_dereg);
    b.flow(t_dereg, t_term);
    b.flow(t_term, t_wait);
    b.flow(t_wait, t_ready);
    b.flow(t_ready, loop_split);
    b.flow(loop_split, loop_join);
    b.flow(loop_split, t_done);
    b.flow(t_done, end);
    b.build().expect("the rolling-upgrade model is valid")
}

/// Transformation rules matching the orchestrator's log lines, with typed
/// named captures (instance ids, progress counts).
pub fn rolling_upgrade_rules() -> RuleBook {
    let mut book = RuleBook::new();
    let mut rule = |activity: &str, boundary, patterns: &[&str]| {
        book.push(
            LineRule::new(activity, boundary, patterns)
                .expect("rolling-upgrade patterns are valid"),
        );
    };
    rule(
        steps::START,
        Boundary::Start,
        &[
            r"Started rolling upgrade task (?P<taskid>[\w-]+) pushing (?P<amiid>ami-[0-9a-f]+) into group (?P<asgid>[\w-]+)",
        ],
    );
    rule(
        steps::UPDATE_LC,
        Boundary::End,
        &[
            r"Created launch configuration (?P<lc>[\w-]+) with image (?P<amiid>ami-[0-9a-f]+) and updated group",
        ],
    );
    rule(
        steps::SORT,
        Boundary::End,
        &[r"Sorted (?P<num>\d+) instances of group [\w-]+ for replacement"],
    );
    rule(
        steps::DEREGISTER,
        Boundary::End,
        &[r"Deregistered instance (?P<instanceid>i-[0-9a-f]+) from load balancer"],
    );
    rule(
        steps::TERMINATE,
        Boundary::End,
        &[r"Terminated old instance (?P<instanceid>i-[0-9a-f]+)"],
    );
    rule(
        steps::WAIT_ASG,
        Boundary::Start,
        &[r"Waiting for ASG [\w-]+ to start a new instance"],
    );
    rule(
        steps::READY,
        Boundary::End,
        &[
            r"Instance \w+ on (?P<instanceid>i-[0-9a-f]+) is ready for use. (?P<done>\d+) of (?P<total>\d+) instance relaunches done",
        ],
    );
    rule(
        steps::COMPLETED,
        Boundary::End,
        &[r"Rolling upgrade task (?P<taskid>[\w-]+) completed"],
    );
    book
}

/// Patterns for log lines that represent *known errors* — classified as
/// `conformance:error` rather than `conformance:unclassified`.
pub fn known_error_patterns() -> Vec<&'static str> {
    vec![
        r"ERROR: cloud reported:",
        r"ERROR: timed out waiting",
        r"ERROR: failed to deregister",
        r"ERROR: rolling upgrade task [\w-]+ aborted",
    ]
}

/// Keep-patterns for the noise filter: operation lines and error lines.
pub fn relevance_patterns() -> Vec<&'static str> {
    vec![
        r"[Rr]olling upgrade",
        r"launch configuration",
        r"[Ii]nstances? ",
        r"load balancer",
        r"Waiting for ASG",
        r"ERROR",
    ]
}

/// The pattern marking the start of the operation (for the timer setter).
pub fn operation_start_pattern() -> &'static str {
    r"Started rolling upgrade task"
}

/// The pattern marking the end of the operation.
pub fn operation_end_pattern() -> &'static str {
    r"Rolling upgrade task [\w-]+ completed|ERROR: rolling upgrade task [\w-]+ aborted"
}

/// The default assertion bindings: step-specific low-level assertions plus
/// the high-level loop assertion ("assert the system has N instances with
/// the new version" after each loop completion, where N comes from the
/// progress count in the log line).
pub fn rolling_upgrade_assertions() -> AssertionLibrary {
    let mut lib = AssertionLibrary::new();
    lib.bind(
        steps::UPDATE_LC,
        vec![
            BoundAssertion::Fixed(CloudAssertion::AsgLaunchConfigCorrect),
            BoundAssertion::Fixed(CloudAssertion::LaunchConfigUsesAmi),
        ],
    );
    lib.bind(
        steps::DEREGISTER,
        vec![BoundAssertion::InstanceFromContext {
            kind: InstanceAssertionKind::DeregisteredFromElb,
        }],
    );
    lib.bind(
        steps::TERMINATE,
        vec![BoundAssertion::InstanceFromContext {
            kind: InstanceAssertionKind::Terminated,
        }],
    );
    lib.bind(
        steps::READY,
        vec![
            // Low-level double-check of the acknowledged success.
            BoundAssertion::InstanceFromContext {
                kind: InstanceAssertionKind::UsesExpectedAmi,
            },
            // Subtle configuration errors (key pair, SG, instance type).
            BoundAssertion::InstanceFromContext {
                kind: InstanceAssertionKind::ConfigurationCorrect,
            },
            BoundAssertion::InstanceFromContext {
                kind: InstanceAssertionKind::RegisteredWithElb,
            },
            // High-level: `done` new-version instances must exist.
            BoundAssertion::VersionCountFromField {
                field: "done".to_string(),
            },
        ],
    );
    // The final whole-cluster check plus the "regression test" assertions
    // the paper's team accumulated over time: the configuration repository
    // must match reality and every referenced resource must exist.
    lib.bind(
        steps::COMPLETED,
        vec![
            BoundAssertion::VersionCountFromEnv,
            BoundAssertion::Fixed(CloudAssertion::AsgLaunchConfigCorrect),
            BoundAssertion::Fixed(CloudAssertion::LaunchConfigUsesAmi),
            BoundAssertion::Fixed(CloudAssertion::LaunchConfigUsesKeyPair),
            BoundAssertion::Fixed(CloudAssertion::LaunchConfigUsesSecurityGroup),
            BoundAssertion::Fixed(CloudAssertion::LaunchConfigUsesInstanceType),
            BoundAssertion::Fixed(CloudAssertion::AmiAvailable),
            BoundAssertion::Fixed(CloudAssertion::KeyPairAvailable),
            BoundAssertion::Fixed(CloudAssertion::SecurityGroupAvailable),
            BoundAssertion::Fixed(CloudAssertion::ElbAvailable),
        ],
    );
    lib
}

#[cfg(test)]
mod tests {
    use super::*;
    use pod_process::{Conformance, ConformanceChecker};

    #[test]
    fn model_replays_a_two_instance_upgrade() {
        let model = rolling_upgrade_model();
        let mut checker = ConformanceChecker::new(&model);
        let trace = [
            steps::START,
            steps::UPDATE_LC,
            steps::SORT,
            steps::DEREGISTER,
            steps::TERMINATE,
            steps::WAIT_ASG,
            steps::READY,
            steps::DEREGISTER,
            steps::TERMINATE,
            steps::WAIT_ASG,
            steps::READY,
            steps::COMPLETED,
        ];
        for act in trace {
            assert_eq!(checker.replay("t", act), Conformance::Fit, "at {act}");
        }
        assert!(checker.is_complete("t"));
    }

    #[test]
    fn model_rejects_skipping_termination() {
        let model = rolling_upgrade_model();
        let mut checker = ConformanceChecker::new(&model);
        for act in [
            steps::START,
            steps::UPDATE_LC,
            steps::SORT,
            steps::DEREGISTER,
        ] {
            checker.replay("t", act);
        }
        // Jumping straight to READY skips TERMINATE and WAIT.
        match checker.replay("t", steps::READY) {
            Conformance::Unfit { expected, skipped } => {
                assert_eq!(expected, vec![steps::TERMINATE.to_string()]);
                assert_eq!(
                    skipped,
                    vec![steps::TERMINATE.to_string(), steps::WAIT_ASG.to_string()]
                );
            }
            other => panic!("expected unfit, got {other:?}"),
        }
    }

    #[test]
    fn rules_match_orchestrator_lines() {
        let rules = rolling_upgrade_rules();
        let cases = [
            (
                "Started rolling upgrade task run-1 pushing ami-750c9e4f into group pm--asg for app pm",
                steps::START,
            ),
            (
                "Created launch configuration lc-upgrade-run-1 with image ami-750c9e4f and updated group pm--asg",
                steps::UPDATE_LC,
            ),
            ("Sorted 4 instances of group pm--asg for replacement", steps::SORT),
            (
                "Deregistered instance i-7df34041 from load balancer front",
                steps::DEREGISTER,
            ),
            ("Terminated old instance i-7df34041", steps::TERMINATE),
            (
                "Waiting for ASG pm--asg to start a new instance of pm",
                steps::WAIT_ASG,
            ),
            (
                "Instance pm on i-аbc12345 is ready for use. 4 of 4 instance relaunches done.",
                steps::READY,
            ),
            ("Rolling upgrade task run-1 completed", steps::COMPLETED),
        ];
        for (line, want) in cases {
            // Note: one case deliberately uses a cyrillic 'а' to prove the
            // matcher is byte-honest — fix it to ASCII first.
            let line = line.replace('а', "a");
            let m = rules.match_line(&line);
            assert_eq!(
                m.as_ref().map(|m| m.activity.as_str()),
                Some(want),
                "line: {line}"
            );
        }
    }

    #[test]
    fn ready_rule_extracts_progress_fields() {
        let rules = rolling_upgrade_rules();
        let m = rules
            .match_line(
                "Instance pm on i-99887766 is ready for use. 3 of 20 instance relaunches done.",
            )
            .unwrap();
        let get = |k: &str| {
            m.fields
                .iter()
                .find(|(key, _)| key == k)
                .map(|(_, v)| v.as_str())
        };
        assert_eq!(get("instanceid"), Some("i-99887766"));
        assert_eq!(get("done"), Some("3"));
        assert_eq!(get("total"), Some("20"));
    }

    #[test]
    fn bindings_cover_the_key_steps() {
        let lib = rolling_upgrade_assertions();
        assert!(!lib.for_activity(steps::UPDATE_LC).is_empty());
        assert!(!lib.for_activity(steps::READY).is_empty());
        assert!(lib.for_activity(steps::SORT).is_empty());
    }

    #[test]
    fn error_patterns_compile_and_match() {
        let set = pod_regex::RegexSet::new(&known_error_patterns()).unwrap();
        assert!(set
            .first_match(
                "ERROR: cloud reported: Failed to launch instance: AMI ami-1 is unavailable"
            )
            .is_some());
        assert!(set.first_match("all fine here").is_none());
        let op_end = pod_regex::Regex::new(operation_end_pattern()).unwrap();
        assert!(op_end.is_match("Rolling upgrade task run-7 completed"));
        assert!(op_end.is_match("ERROR: rolling upgrade task run-7 aborted: boom"));
    }
}
