//! The Asgard-like rolling-upgrade orchestrator.
//!
//! Executes the process of Figure 2 against the simulated cloud and emits
//! Asgard-style operation-log lines. POD-Diagnosis is non-intrusive: it
//! observes only these log lines and the cloud APIs; the orchestrator knows
//! nothing about conformance checking, assertions or diagnosis.

use pod_cloud::{ActivityStatus, ApiError, Cloud, InstanceId, InstanceState, LaunchConfigName};
use pod_log::{LogEvent, Severity};
use pod_sim::{SimDuration, SimTime};

use crate::config::UpgradeConfig;

/// Receives orchestrator output and drives co-located activity.
///
/// `on_log` is called for every operation-log line as it is produced (this
/// is where POD-Diagnosis taps in). `on_tick` is called at every safe point
/// (between steps and at poll iterations) so the experiment harness can
/// inject faults and interference at a chosen virtual time.
pub trait UpgradeObserver {
    /// A new operation-log line.
    fn on_log(&mut self, event: LogEvent);
    /// A safe point; `now` is the current virtual time.
    fn on_tick(&mut self, cloud: &Cloud, now: SimTime);
}

/// An observer that collects logs and does nothing at ticks.
#[derive(Debug, Default)]
pub struct CollectingObserver {
    /// The collected operation log.
    pub events: Vec<LogEvent>,
}

impl UpgradeObserver for CollectingObserver {
    fn on_log(&mut self, event: LogEvent) {
        self.events.push(event);
    }

    fn on_tick(&mut self, _cloud: &Cloud, _now: SimTime) {}
}

/// Why an upgrade run ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UpgradeOutcome {
    /// All instances replaced.
    Completed,
    /// The orchestrator gave up waiting for a replacement instance.
    TimedOutWaitingForInstance {
        /// The instance whose replacement never appeared.
        replacing: InstanceId,
    },
    /// A cloud API call failed irrecoverably.
    ApiFailure {
        /// The failing call's error.
        error: ApiError,
    },
}

impl UpgradeOutcome {
    /// Whether the upgrade finished successfully.
    pub fn is_success(&self) -> bool {
        matches!(self, UpgradeOutcome::Completed)
    }
}

/// Summary of one upgrade run.
#[derive(Debug, Clone)]
pub struct UpgradeReport {
    /// How the run ended.
    pub outcome: UpgradeOutcome,
    /// Instances successfully replaced.
    pub replaced: usize,
    /// Start time.
    pub started_at: SimTime,
    /// Total virtual duration.
    pub duration: SimDuration,
}

/// The rolling-upgrade engine.
#[derive(Debug)]
pub struct RollingUpgrade {
    cloud: Cloud,
    config: UpgradeConfig,
    task_id: String,
    seq: u64,
    last_new_instance: Option<InstanceId>,
}

impl RollingUpgrade {
    /// Creates an upgrade task. `task_id` names the process instance (the
    /// trace id in conformance checking).
    pub fn new(cloud: Cloud, config: UpgradeConfig, task_id: impl Into<String>) -> RollingUpgrade {
        RollingUpgrade {
            cloud,
            config,
            task_id: task_id.into(),
            seq: 0,
            last_new_instance: None,
        }
    }

    /// The task (process instance) id.
    pub fn task_id(&self) -> &str {
        &self.task_id
    }

    fn log(&mut self, observer: &mut dyn UpgradeObserver, severity: Severity, message: String) {
        self.seq += 1;
        let event = LogEvent::new(self.cloud.clock().now(), "asgard.log", message)
            .with_type("asgard")
            .with_severity(severity)
            .with_field("taskid", self.task_id.clone())
            .with_field("seq", self.seq.to_string());
        observer.on_log(event);
    }

    fn tick(&mut self, observer: &mut dyn UpgradeObserver) {
        let now = self.cloud.clock().now();
        observer.on_tick(&self.cloud, now);
    }

    /// Runs the whole upgrade, emitting logs and ticks to `observer`.
    pub fn run(&mut self, observer: &mut dyn UpgradeObserver) -> UpgradeReport {
        let started_at = self.cloud.clock().now();
        let outcome = self.run_inner(observer, started_at);
        let report = UpgradeReport {
            replaced: match &outcome {
                UpgradeOutcome::Completed => self.replaced_target(),
                _ => 0, // detailed count tracked by run_inner's logs
            },
            outcome,
            started_at,
            duration: self.cloud.clock().now().duration_since(started_at),
        };
        report
    }

    fn replaced_target(&self) -> usize {
        self.cloud
            .admin_describe_asg(&self.config.asg)
            .map(|g| g.desired_capacity as usize)
            .unwrap_or(0)
    }

    fn run_inner(
        &mut self,
        observer: &mut dyn UpgradeObserver,
        _started_at: SimTime,
    ) -> UpgradeOutcome {
        let cfg = self.config.clone();
        let run_span = self.cloud.obs().span("upgrade.run");
        run_span.attr("task", &self.task_id);
        // Step 1: start.
        {
            let step = self.cloud.obs().span("upgrade.step");
            step.attr("step", "start");
            self.log(
                observer,
                Severity::Info,
                format!(
                    "Started rolling upgrade task {} pushing {} into group {} for app {}",
                    self.task_id, cfg.new_ami, cfg.asg, cfg.app_name
                ),
            );
        }
        self.tick(observer);

        // Step 2: update launch configuration.
        let lc_name = {
            let step = self.cloud.obs().span("upgrade.step");
            step.attr("step", "update-launch-config");
            match self.update_launch_configuration(observer) {
                Ok(name) => name,
                Err(e) => return self.fail(observer, e),
            }
        };
        self.tick(observer);

        // Step 3: sort instances (oldest first, like Asgard).
        let old = {
            let step = self.cloud.obs().span("upgrade.step");
            step.attr("step", "sort-instances");
            let mut old: Vec<_> = match self.cloud.describe_asg_instances(&cfg.asg) {
                Ok(instances) => instances
                    .into_iter()
                    .filter(|i| i.state.is_active())
                    .collect(),
                Err(e) => return self.fail(observer, e),
            };
            old.sort_by(|a, b| a.launched_at.cmp(&b.launched_at).then(a.id.cmp(&b.id)));
            self.log(
                observer,
                Severity::Info,
                format!(
                    "Sorted {} instances of group {} for replacement",
                    old.len(),
                    cfg.asg
                ),
            );
            old
        };
        self.tick(observer);

        // Step 4: the replacement loop, k at a time.
        let total = old.len();
        let mut replaced = 0usize;
        let mut activity_cursor = self.cloud.clock().now();
        for batch in old.chunks(cfg.batch_size.max(1)) {
            for instance in batch {
                let span = self.cloud.obs().span("upgrade.step");
                span.attr("step", "replace-instance");
                span.attr("victim", &instance.id);
                if let Err(e) = self.replace_one(observer, &lc_name, &instance.id) {
                    return e;
                }
                replaced += 1;
                self.log(
                    observer,
                    Severity::Info,
                    format!(
                        "Instance {} on {} is ready for use. {replaced} of {total} instance \
                         relaunches done.",
                        cfg.app_name,
                        self.last_new_instance
                            .clone()
                            .map(|i| i.to_string())
                            .unwrap_or_else(|| "unknown".to_string()),
                    ),
                );
                self.surface_cloud_errors(observer, &mut activity_cursor);
                self.tick(observer);
            }
        }

        // Step 5: completed.
        {
            let step = self.cloud.obs().span("upgrade.step");
            step.attr("step", "completed");
            self.log(
                observer,
                Severity::Info,
                format!("Rolling upgrade task {} completed", self.task_id),
            );
        }
        self.tick(observer);
        UpgradeOutcome::Completed
    }

    fn update_launch_configuration(
        &mut self,
        observer: &mut dyn UpgradeObserver,
    ) -> Result<LaunchConfigName, ApiError> {
        let cfg = self.config.clone();
        // Asgard derives the new LC from the current one, swapping the AMI.
        let group = self.cloud.describe_asg(&cfg.asg)?;
        let current = self.cloud.describe_launch_config(&group.launch_config)?;
        let lc_name = format!("{}-{}", cfg.new_launch_config, self.task_id);
        let created = self.cloud.create_launch_config(
            lc_name,
            cfg.new_ami.clone(),
            current.instance_type.clone(),
            current.key_pair.clone(),
            current.security_group.clone(),
        )?;
        self.cloud.update_asg(
            &cfg.asg,
            pod_cloud::AsgUpdate {
                launch_config: Some(created.clone()),
                ..pod_cloud::AsgUpdate::default()
            },
        )?;
        self.log(
            observer,
            Severity::Info,
            format!(
                "Created launch configuration {created} with image {} and updated group {}",
                cfg.new_ami, cfg.asg
            ),
        );
        Ok(created)
    }

    fn replace_one(
        &mut self,
        observer: &mut dyn UpgradeObserver,
        _lc: &LaunchConfigName,
        victim: &InstanceId,
    ) -> Result<(), UpgradeOutcome> {
        let cfg = self.config.clone();
        // Known member set before the replacement, to recognise the new one.
        let before: Vec<InstanceId> = self
            .cloud
            .describe_asg(&cfg.asg)
            .map(|g| g.instances)
            .unwrap_or_default();

        // 4a. Deregister from the ELB.
        match self.cloud.deregister_from_elb(&cfg.elb, victim) {
            Ok(()) => self.log(
                observer,
                Severity::Info,
                format!(
                    "Deregistered instance {victim} from load balancer {}",
                    cfg.elb
                ),
            ),
            Err(e) => {
                // Asgard logs the error and carries on: the ASG will still
                // replace the instance; traffic draining is best-effort.
                self.log(
                    observer,
                    Severity::Error,
                    format!(
                        "ERROR: failed to deregister {victim} from load balancer {}: {e}",
                        cfg.elb
                    ),
                );
            }
        }
        self.tick(observer);

        // 4b. Terminate the old instance (ASG replaces it).
        if let Err(e) = self.cloud.terminate_instance(victim, false) {
            return Err(self.fail(observer, e));
        }
        self.log(
            observer,
            Severity::Info,
            format!("Terminated old instance {victim}"),
        );
        self.tick(observer);

        // 4c. Wait for the ASG to start the replacement.
        self.log(
            observer,
            Severity::Info,
            format!(
                "Waiting for ASG {} to start a new instance of {}",
                cfg.asg, cfg.app_name
            ),
        );
        let wait_started = self.cloud.clock().now();
        let mut activity_cursor = wait_started;
        loop {
            self.cloud.sleep(cfg.poll_interval);
            self.tick(observer);
            self.surface_cloud_errors(observer, &mut activity_cursor);
            let instances = match self.cloud.describe_asg_instances(&cfg.asg) {
                Ok(i) => i,
                Err(ApiError::Throttling) => continue,
                Err(e) => return Err(self.fail(observer, e)),
            };
            let fresh = instances.iter().find(|i| {
                i.state == InstanceState::InService
                    && !before.contains(&i.id)
                    && i.registered_with_elb
            });
            if let Some(new_instance) = fresh {
                self.last_new_instance = Some(new_instance.id.clone());
                return Ok(());
            }
            let waited = self.cloud.clock().now().duration_since(wait_started);
            if waited > cfg.max_wait_per_instance {
                self.log(
                    observer,
                    Severity::Error,
                    format!(
                        "ERROR: timed out waiting for ASG {} to start a replacement for \
                         {victim} after {waited}",
                        cfg.asg
                    ),
                );
                return Err(UpgradeOutcome::TimedOutWaitingForInstance {
                    replacing: victim.clone(),
                });
            }
        }
    }

    /// Surfaces failed scaling activities into the operation log, the way
    /// Asgard's task log shows AWS-side errors.
    fn surface_cloud_errors(&mut self, observer: &mut dyn UpgradeObserver, cursor: &mut SimTime) {
        let since = *cursor;
        *cursor = self.cloud.clock().now();
        if let Ok(activities) = self
            .cloud
            .describe_scaling_activities(&self.config.asg, since)
        {
            for a in activities {
                if let ActivityStatus::Failed(msg) = &a.status {
                    self.log(
                        observer,
                        Severity::Error,
                        format!("ERROR: cloud reported: {msg}"),
                    );
                }
            }
        }
    }

    fn fail(&mut self, observer: &mut dyn UpgradeObserver, error: ApiError) -> UpgradeOutcome {
        self.log(
            observer,
            Severity::Error,
            format!(
                "ERROR: rolling upgrade task {} aborted: {error}",
                self.task_id
            ),
        );
        UpgradeOutcome::ApiFailure { error }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pod_cloud::CloudConfig;
    use pod_sim::{Clock, SimRng};

    fn setup(n: u32) -> (Cloud, UpgradeConfig) {
        let cloud = Cloud::new(
            Clock::new(),
            SimRng::seed_from(31),
            CloudConfig {
                stale_read_prob: 0.0,
                ..CloudConfig::default()
            },
        );
        let ami_v1 = cloud.admin_create_ami("app", "1.0");
        let ami_v2 = cloud.admin_create_ami("app", "2.0");
        let sg = cloud.admin_create_security_group("web", &[80]);
        let kp = cloud.admin_create_key_pair("prod");
        let elb = cloud.admin_create_elb("front");
        let lc = cloud.admin_create_launch_config("lc-v1", ami_v1, "m1.small", kp, sg);
        let asg = cloud.admin_create_asg("pm--asg", lc, 1, 30, n, Some(elb.clone()));
        let config = UpgradeConfig::new("pm", asg, elb, ami_v2, "2.0");
        (cloud, config)
    }

    #[test]
    fn upgrade_replaces_every_instance() {
        let (cloud, config) = setup(4);
        let asg = config.asg.clone();
        let mut upgrade = RollingUpgrade::new(cloud.clone(), config, "run-1");
        let mut obs = CollectingObserver::default();
        let report = upgrade.run(&mut obs);
        assert!(report.outcome.is_success(), "{:?}", report.outcome);
        let active = cloud.admin_asg_active_instances(&asg);
        assert_eq!(active.len(), 4);
        assert!(active.iter().all(|i| i.version == "2.0"));
        assert!(active.iter().all(|i| i.registered_with_elb));
        // Log shape: start, lc, sort, 4 × (dereg, term, wait, ready), done.
        let msgs: Vec<&str> = obs.events.iter().map(|e| e.message.as_str()).collect();
        assert!(msgs[0].contains("Started rolling upgrade"));
        assert!(msgs.last().unwrap().contains("completed"));
        assert_eq!(
            msgs.iter()
                .filter(|m| m.contains("is ready for use"))
                .count(),
            4
        );
        assert_eq!(
            msgs.iter()
                .filter(|m| m.contains("Terminated old instance"))
                .count(),
            4
        );
    }

    #[test]
    fn upgrade_duration_is_realistic() {
        let (cloud, config) = setup(4);
        let mut upgrade = RollingUpgrade::new(cloud.clone(), config, "run-1");
        let mut obs = CollectingObserver::default();
        let report = upgrade.run(&mut obs);
        // 4 instances × (terminate ≈25s + reconcile ≤10s + boot ≈50s):
        // minutes, not hours.
        let mins = report.duration.as_secs_f64() / 60.0;
        assert!(mins > 2.0 && mins < 30.0, "took {mins} minutes");
    }

    #[test]
    fn unavailable_ami_times_out_with_error_logs() {
        let (cloud, mut config) = setup(2);
        config.max_wait_per_instance = SimDuration::from_secs(120);
        cloud.admin_set_ami_available(&config.new_ami, false);
        let mut upgrade = RollingUpgrade::new(cloud.clone(), config, "run-1");
        let mut obs = CollectingObserver::default();
        let report = upgrade.run(&mut obs);
        assert!(matches!(
            report.outcome,
            UpgradeOutcome::TimedOutWaitingForInstance { .. }
        ));
        assert!(obs
            .events
            .iter()
            .any(|e| e.severity == Severity::Error && e.message.contains("AMI")));
        assert!(obs
            .events
            .iter()
            .any(|e| e.message.contains("timed out waiting")));
    }

    #[test]
    fn elb_unavailable_surfaces_deregistration_error() {
        let (cloud, mut config) = setup(2);
        config.max_wait_per_instance = SimDuration::from_secs(120);
        cloud.admin_set_elb_available(&config.elb, false);
        let mut upgrade = RollingUpgrade::new(cloud.clone(), config, "run-1");
        let mut obs = CollectingObserver::default();
        let report = upgrade.run(&mut obs);
        assert!(!report.outcome.is_success());
        assert!(obs
            .events
            .iter()
            .any(|e| e.message.contains("failed to deregister")));
    }

    #[test]
    fn observer_ticks_fire_during_run() {
        struct Counting {
            ticks: usize,
        }
        impl UpgradeObserver for Counting {
            fn on_log(&mut self, _e: LogEvent) {}
            fn on_tick(&mut self, _c: &Cloud, _t: SimTime) {
                self.ticks += 1;
            }
        }
        let (cloud, config) = setup(2);
        let mut upgrade = RollingUpgrade::new(cloud, config, "run-1");
        let mut obs = Counting { ticks: 0 };
        upgrade.run(&mut obs);
        assert!(obs.ticks > 5);
    }
}
