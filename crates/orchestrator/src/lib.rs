//! The operation side of the reproduction: an Asgard-like rolling-upgrade
//! orchestrator, the Figure-2 process definition, fault injection and
//! interference operations.
//!
//! POD-Diagnosis is non-intrusive: the [`RollingUpgrade`] engine knows
//! nothing about diagnosis. It executes the upgrade against the simulated
//! cloud, emits Asgard-style operation-log lines through an
//! [`UpgradeObserver`] (where the POD engine taps in) and exposes safe
//! points (`on_tick`) where the evaluation harness injects the paper's
//! eight fault types ([`FaultType`], [`FaultInjector`]) and the confounding
//! simultaneous operations ([`Interference`]).
//!
//! [`process_def`] holds the curated offline artefacts for this operation:
//! the Figure-2 [`pod_process::ProcessModel`], the transformation rules,
//! noise/error patterns and default assertion bindings.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod config;
mod injection;
mod noise;
pub mod process_def;
mod upgrade;

pub use config::UpgradeConfig;
pub use injection::{FaultInjector, FaultType, Interference};
pub use noise::NoiseGenerator;
pub use upgrade::{
    CollectingObserver, RollingUpgrade, UpgradeObserver, UpgradeOutcome, UpgradeReport,
};
