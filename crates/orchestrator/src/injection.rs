//! Fault injection and interference operations (Section V of the paper).
//!
//! "We injected 8 different types of faults into the clusters … We also
//! injected simultaneous operations (such as legitimate scaling in/out or
//! changes to instances) to confound our diagnosis."

use std::fmt;

use pod_cloud::{AmiId, Cloud, InstanceId, KeyPairName, LaunchConfigUpdate, SecurityGroupId};
use pod_sim::SimRng;

use crate::config::UpgradeConfig;

/// The eight injected fault types of the evaluation (Section V.C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FaultType {
    /// 1 — AMI changed during upgrade (simultaneous independent push).
    AmiChangedDuringUpgrade,
    /// 2 — key-pair management fault (wrong key configured).
    KeyPairManagementFault,
    /// 3 — security-group configuration fault.
    SecurityGroupConfigurationFault,
    /// 4 — instance type changed during upgrade.
    InstanceTypeChangedDuringUpgrade,
    /// 5 — AMI unavailable during upgrade.
    AmiUnavailable,
    /// 6 — key pair unavailable during upgrade.
    KeyPairUnavailable,
    /// 7 — security group unavailable during upgrade.
    SecurityGroupUnavailable,
    /// 8 — ELB unavailable during upgrade.
    ElbUnavailable,
}

impl FaultType {
    /// All eight types, in the paper's order.
    pub fn all() -> [FaultType; 8] {
        [
            FaultType::AmiChangedDuringUpgrade,
            FaultType::KeyPairManagementFault,
            FaultType::SecurityGroupConfigurationFault,
            FaultType::InstanceTypeChangedDuringUpgrade,
            FaultType::AmiUnavailable,
            FaultType::KeyPairUnavailable,
            FaultType::SecurityGroupUnavailable,
            FaultType::ElbUnavailable,
        ]
    }

    /// Whether the fault is a *configuration* fault whose log output looks
    /// normal (the paper's first four types, invisible to conformance
    /// checking) as opposed to a *resource* fault that disturbs the log.
    pub fn is_configuration_fault(self) -> bool {
        matches!(
            self,
            FaultType::AmiChangedDuringUpgrade
                | FaultType::KeyPairManagementFault
                | FaultType::SecurityGroupConfigurationFault
                | FaultType::InstanceTypeChangedDuringUpgrade
        )
    }

    /// The fault-tree node id that correctly explains this fault — the
    /// ground truth the evaluation scores diagnosis against.
    pub fn expected_root_cause(self) -> &'static str {
        match self {
            FaultType::AmiChangedDuringUpgrade => "lc-wrong-ami",
            FaultType::KeyPairManagementFault => "lc-wrong-key-pair",
            FaultType::SecurityGroupConfigurationFault => "lc-wrong-sg",
            FaultType::InstanceTypeChangedDuringUpgrade => "lc-wrong-instance-type",
            FaultType::AmiUnavailable => "ami-unavailable",
            FaultType::KeyPairUnavailable => "key-pair-unavailable",
            FaultType::SecurityGroupUnavailable => "sg-unavailable",
            FaultType::ElbUnavailable => "elb-unavailable",
        }
    }
}

impl fmt::Display for FaultType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            FaultType::AmiChangedDuringUpgrade => "AMI changed during upgrade",
            FaultType::KeyPairManagementFault => "key pair management fault",
            FaultType::SecurityGroupConfigurationFault => "security group configuration fault",
            FaultType::InstanceTypeChangedDuringUpgrade => "instance type changed during upgrade",
            FaultType::AmiUnavailable => "AMI is unavailable during upgrade",
            FaultType::KeyPairUnavailable => "key pair is unavailable during upgrade",
            FaultType::SecurityGroupUnavailable => "security group is unavailable during upgrade",
            FaultType::ElbUnavailable => "ELB is unavailable during upgrade",
        };
        f.write_str(name)
    }
}

/// Injects and (optionally) reverts one fault. Keeps the handles needed to
/// undo the mutation, so the harness can model *transient* faults — the
/// paper's third wrong-diagnosis class is a fault corrected before the
/// on-demand diagnosis test runs.
#[derive(Debug)]
pub struct FaultInjector {
    fault: FaultType,
    /// Resources created for the injection (e.g. the "evil" AMI).
    undo: Option<UndoAction>,
}

#[derive(Debug)]
enum UndoAction {
    LaunchConfig(LaunchConfigUpdate),
    Ami(AmiId),
    KeyPair(KeyPairName),
    SecurityGroup(SecurityGroupId),
    Elb(pod_cloud::ElbName),
}

impl FaultInjector {
    /// Creates an injector for one fault type.
    pub fn new(fault: FaultType) -> FaultInjector {
        FaultInjector { fault, undo: None }
    }

    /// The fault this injector handles.
    pub fn fault(&self) -> FaultType {
        self.fault
    }

    /// Applies the fault to the environment of `config`'s upgrade. The
    /// launch-configuration faults target the LC the upgrade created
    /// (`lc_name`), simulating a concurrent team's push or a
    /// misconfiguration landing mid-upgrade.
    pub fn inject(
        &mut self,
        cloud: &Cloud,
        config: &UpgradeConfig,
        lc_name: &str,
        rng: &mut SimRng,
    ) {
        let lc = pod_cloud::LaunchConfigName::new(lc_name);
        match self.fault {
            FaultType::AmiChangedDuringUpgrade => {
                let rogue = cloud
                    .admin_create_ami("rogue-push", &format!("9.{}.0", rng.uniform_u64(0, 100)));
                self.undo = Some(UndoAction::LaunchConfig(LaunchConfigUpdate {
                    ami: Some(config.new_ami.clone()),
                    ..LaunchConfigUpdate::default()
                }));
                cloud.admin_update_launch_config(
                    &lc,
                    LaunchConfigUpdate {
                        ami: Some(rogue),
                        ..LaunchConfigUpdate::default()
                    },
                );
            }
            FaultType::KeyPairManagementFault => {
                let rogue =
                    cloud.admin_create_key_pair(&format!("stray-key-{}", rng.uniform_u64(0, 1000)));
                let current = cloud.admin_describe_launch_config(&lc);
                self.undo = Some(UndoAction::LaunchConfig(LaunchConfigUpdate {
                    key_pair: current.map(|c| c.key_pair),
                    ..LaunchConfigUpdate::default()
                }));
                cloud.admin_update_launch_config(
                    &lc,
                    LaunchConfigUpdate {
                        key_pair: Some(rogue),
                        ..LaunchConfigUpdate::default()
                    },
                );
            }
            FaultType::SecurityGroupConfigurationFault => {
                let rogue = cloud.admin_create_security_group("misconfigured", &[22]);
                let current = cloud.admin_describe_launch_config(&lc);
                self.undo = Some(UndoAction::LaunchConfig(LaunchConfigUpdate {
                    security_group: current.map(|c| c.security_group),
                    ..LaunchConfigUpdate::default()
                }));
                cloud.admin_update_launch_config(
                    &lc,
                    LaunchConfigUpdate {
                        security_group: Some(rogue),
                        ..LaunchConfigUpdate::default()
                    },
                );
            }
            FaultType::InstanceTypeChangedDuringUpgrade => {
                let current = cloud.admin_describe_launch_config(&lc);
                self.undo = Some(UndoAction::LaunchConfig(LaunchConfigUpdate {
                    instance_type: current.map(|c| c.instance_type),
                    ..LaunchConfigUpdate::default()
                }));
                cloud.admin_update_launch_config(
                    &lc,
                    LaunchConfigUpdate {
                        instance_type: Some("m3.2xlarge".to_string()),
                        ..LaunchConfigUpdate::default()
                    },
                );
            }
            FaultType::AmiUnavailable => {
                cloud.admin_set_ami_available(&config.new_ami, false);
                self.undo = Some(UndoAction::Ami(config.new_ami.clone()));
            }
            FaultType::KeyPairUnavailable => {
                if let Some(current) = cloud.admin_describe_launch_config(&lc).map(|c| c.key_pair) {
                    cloud.admin_set_key_pair_available(&current, false);
                    self.undo = Some(UndoAction::KeyPair(current));
                }
            }
            FaultType::SecurityGroupUnavailable => {
                if let Some(current) = cloud
                    .admin_describe_launch_config(&lc)
                    .map(|c| c.security_group)
                {
                    cloud.admin_set_security_group_available(&current, false);
                    self.undo = Some(UndoAction::SecurityGroup(current));
                }
            }
            FaultType::ElbUnavailable => {
                cloud.admin_set_elb_available(&config.elb, false);
                self.undo = Some(UndoAction::Elb(config.elb.clone()));
            }
        }
    }

    /// Reverts the injected fault (for transient-fault scenarios). Returns
    /// `true` if there was something to revert.
    pub fn revert(&mut self, cloud: &Cloud, lc_name: &str) -> bool {
        let lc = pod_cloud::LaunchConfigName::new(lc_name);
        match self.undo.take() {
            Some(UndoAction::LaunchConfig(update)) => {
                cloud.admin_update_launch_config(&lc, update);
                true
            }
            Some(UndoAction::Ami(ami)) => {
                cloud.admin_set_ami_available(&ami, true);
                true
            }
            Some(UndoAction::KeyPair(kp)) => {
                cloud.admin_set_key_pair_available(&kp, true);
                true
            }
            Some(UndoAction::SecurityGroup(sg)) => {
                cloud.admin_set_security_group_available(&sg, true);
                true
            }
            Some(UndoAction::Elb(elb)) => {
                cloud.admin_set_elb_available(&elb, true);
                true
            }
            None => false,
        }
    }
}

/// The simultaneous operations the evaluation runs to confound diagnosis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interference {
    /// A legitimate ASG scale-in (desired capacity − 1).
    ScaleIn,
    /// A legitimate scale-out (desired capacity + 1).
    ScaleOut,
    /// A random instance termination outside any operation.
    RandomTermination,
    /// The independent team on the shared account consumes capacity until
    /// the instance limit binds.
    OtherTeamCapacityPressure,
}

impl Interference {
    /// Applies the interference. Returns the standalone instances launched
    /// by capacity pressure (so the harness can release them later).
    pub fn apply(self, cloud: &Cloud, config: &UpgradeConfig, rng: &mut SimRng) -> Vec<InstanceId> {
        match self {
            Interference::ScaleIn | Interference::ScaleOut => {
                if let Some(group) = cloud.admin_describe_asg(&config.asg) {
                    let desired = if self == Interference::ScaleIn {
                        group.desired_capacity.saturating_sub(1).max(group.min_size)
                    } else {
                        (group.desired_capacity + 1).min(group.max_size)
                    };
                    let _ = cloud.update_asg(
                        &config.asg,
                        pod_cloud::AsgUpdate {
                            desired_capacity: Some(desired),
                            ..pod_cloud::AsgUpdate::default()
                        },
                    );
                }
                Vec::new()
            }
            Interference::RandomTermination => {
                let active = cloud.admin_asg_active_instances(&config.asg);
                if !active.is_empty() {
                    let victim = &active[rng.index(active.len())];
                    cloud.admin_terminate_instance(&victim.id);
                }
                Vec::new()
            }
            Interference::OtherTeamCapacityPressure => {
                let other_ami = cloud.admin_create_ami("other-team", "0.1");
                let ids = cloud.admin_launch_standalone(2, &other_ami);
                // The other team has effectively reserved the remaining
                // quota: even a freed slot is snapped up before the ASG can
                // use it. Model this by putting the limit below current
                // usage, so replacement launches stay blocked until the
                // pressure is released.
                let used = cloud.admin_active_instance_count();
                cloud.admin_set_instance_limit(used.saturating_sub(1));
                ids
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pod_cloud::{CloudConfig, InstanceState};
    use pod_sim::{Clock, SimDuration};

    fn setup() -> (Cloud, UpgradeConfig, String) {
        let cloud = Cloud::new(
            Clock::new(),
            SimRng::seed_from(41),
            CloudConfig {
                stale_read_prob: 0.0,
                ..CloudConfig::default()
            },
        );
        let ami_v2 = cloud.admin_create_ami("app", "2.0");
        let sg = cloud.admin_create_security_group("web", &[80]);
        let kp = cloud.admin_create_key_pair("prod");
        let elb = cloud.admin_create_elb("front");
        let lc = cloud.admin_create_launch_config("lc-up", ami_v2.clone(), "m1.small", kp, sg);
        let asg = cloud.admin_create_asg("pm--asg", lc.clone(), 1, 30, 4, Some(elb.clone()));
        let config = UpgradeConfig::new("pm", asg, elb, ami_v2, "2.0");
        (cloud, config, lc.to_string())
    }

    #[test]
    fn all_eight_faults_inject_and_revert() {
        for fault in FaultType::all() {
            let (cloud, config, lc) = setup();
            let mut rng = SimRng::seed_from(1);
            let mut injector = FaultInjector::new(fault);
            injector.inject(&cloud, &config, &lc, &mut rng);
            assert!(injector.revert(&cloud, &lc), "revert {fault}");
            assert!(!injector.revert(&cloud, &lc), "second revert is a no-op");
        }
    }

    #[test]
    fn ami_change_fault_alters_launch_config() {
        let (cloud, config, lc) = setup();
        let mut rng = SimRng::seed_from(2);
        let mut injector = FaultInjector::new(FaultType::AmiChangedDuringUpgrade);
        injector.inject(&cloud, &config, &lc, &mut rng);
        let current = cloud
            .admin_describe_launch_config(&pod_cloud::LaunchConfigName::new(&lc))
            .unwrap();
        assert_ne!(current.ami, config.new_ami);
        injector.revert(&cloud, &lc);
        let current = cloud
            .admin_describe_launch_config(&pod_cloud::LaunchConfigName::new(&lc))
            .unwrap();
        assert_eq!(current.ami, config.new_ami);
    }

    #[test]
    fn configuration_classification_matches_paper() {
        let conf: Vec<_> = FaultType::all()
            .into_iter()
            .filter(|f| f.is_configuration_fault())
            .collect();
        assert_eq!(conf.len(), 4);
        assert!(conf.contains(&FaultType::AmiChangedDuringUpgrade));
        assert!(!FaultType::ElbUnavailable.is_configuration_fault());
    }

    #[test]
    fn scale_in_reduces_desired() {
        let (cloud, config, _) = setup();
        let mut rng = SimRng::seed_from(3);
        Interference::ScaleIn.apply(&cloud, &config, &mut rng);
        cloud.sleep(SimDuration::from_secs(1));
        assert_eq!(
            cloud
                .admin_describe_asg(&config.asg)
                .unwrap()
                .desired_capacity,
            3
        );
    }

    #[test]
    fn random_termination_kills_a_member() {
        let (cloud, config, _) = setup();
        let mut rng = SimRng::seed_from(4);
        Interference::RandomTermination.apply(&cloud, &config, &mut rng);
        cloud.sleep(SimDuration::from_secs(5));
        let terminating = cloud
            .admin_describe_asg(&config.asg)
            .unwrap()
            .instances
            .iter()
            .filter(|id| {
                cloud
                    .admin_describe_instance(id)
                    .is_some_and(|i| i.state == InstanceState::Terminating)
            })
            .count();
        assert_eq!(terminating, 1);
    }

    #[test]
    fn capacity_pressure_binds_the_limit() {
        let (cloud, config, _) = setup();
        let mut rng = SimRng::seed_from(5);
        let ids = Interference::OtherTeamCapacityPressure.apply(&cloud, &config, &mut rng);
        assert_eq!(ids.len(), 2);
        // Headroom is zero: count == limit.
        assert_eq!(cloud.admin_active_instance_count(), 6);
    }

    #[test]
    fn expected_root_causes_are_distinct() {
        let mut causes: Vec<&str> = FaultType::all()
            .into_iter()
            .map(|f| f.expected_root_cause())
            .collect();
        causes.sort();
        causes.dedup();
        assert_eq!(causes.len(), 8);
    }
}
