//! Configuration of a rolling-upgrade run.

use pod_cloud::{AmiId, AsgName, ElbName};
use pod_sim::SimDuration;

/// Parameters of one rolling upgrade (the paper upgrades clusters of 4 or
/// 20 instances, replacing 1 or 5 at a time).
#[derive(Debug, Clone)]
pub struct UpgradeConfig {
    /// Application name used in log lines (the paper's example uses `pm`).
    pub app_name: String,
    /// The ASG being upgraded.
    pub asg: AsgName,
    /// The load balancer fronting the ASG.
    pub elb: ElbName,
    /// The new AMI to roll out.
    pub new_ami: AmiId,
    /// The version baked into the new AMI.
    pub new_version: String,
    /// Name for the launch configuration the upgrade creates.
    pub new_launch_config: String,
    /// How many instances to replace at a time (the paper's `k`).
    pub batch_size: usize,
    /// How often the orchestrator polls while waiting for a new instance.
    pub poll_interval: SimDuration,
    /// How long to wait for one replacement before giving up.
    pub max_wait_per_instance: SimDuration,
}

impl UpgradeConfig {
    /// Sensible defaults matching the paper's 4-instance setup.
    pub fn new(
        app_name: impl Into<String>,
        asg: AsgName,
        elb: ElbName,
        new_ami: AmiId,
        new_version: impl Into<String>,
    ) -> UpgradeConfig {
        UpgradeConfig {
            app_name: app_name.into(),
            asg,
            elb,
            new_ami,
            new_version: new_version.into(),
            new_launch_config: "lc-upgrade".to_string(),
            batch_size: 1,
            poll_interval: SimDuration::from_secs(10),
            max_wait_per_instance: SimDuration::from_secs(600),
        }
    }
}
