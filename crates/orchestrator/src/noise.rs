//! Application-noise generation.
//!
//! The upgraded application is itself a distributed log-monitoring stack
//! (Redis, Logstash, ElasticSearch, Kibana in the paper's setup), whose
//! routine output is interleaved with the operation log. The noise filter
//! of the local log processor must drop these lines; this generator
//! produces them.

use pod_log::LogEvent;
use pod_sim::{SimRng, SimTime};

/// Routine application log templates (no overlap with operation lines).
const TEMPLATES: &[&str] = &[
    "redis: background saving finished in {n} ms",
    "logstash: pipeline flushed {n} events",
    "elasticsearch: [gc][{n}] overhead, spent collecting in last second",
    "kibana: request /api/status completed in {n} ms",
    "redis: {n} clients connected, using {n} kb memory",
    "elasticsearch: cluster health status green, {n} shards active",
];

/// Generates plausible application noise lines.
#[derive(Debug)]
pub struct NoiseGenerator {
    rng: SimRng,
    /// Probability of emitting a noise line at each opportunity.
    pub rate: f64,
}

impl NoiseGenerator {
    /// Creates a generator emitting with the given per-tick probability.
    pub fn new(rng: SimRng, rate: f64) -> NoiseGenerator {
        NoiseGenerator { rng, rate }
    }

    /// Possibly produces one noise event at `now`.
    pub fn maybe_emit(&mut self, now: SimTime) -> Option<LogEvent> {
        if !self.rng.chance(self.rate) {
            return None;
        }
        Some(self.emit(now))
    }

    /// Produces one noise event at `now`.
    pub fn emit(&mut self, now: SimTime) -> LogEvent {
        let template = *self.rng.choose(TEMPLATES);
        let mut message = String::new();
        for part in template.split("{n}") {
            if !message.is_empty() {
                message.push_str(&self.rng.uniform_u64(1, 5000).to_string());
            }
            message.push_str(part);
        }
        // Handle templates ending with {n}.
        if template.ends_with("{n}") {
            message.push_str(&self.rng.uniform_u64(1, 5000).to_string());
        }
        LogEvent::new(now, "application.log", message).with_type("application")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emits_filled_templates() {
        let mut g = NoiseGenerator::new(SimRng::seed_from(1), 1.0);
        for _ in 0..50 {
            let e = g.emit(SimTime::ZERO);
            assert!(!e.message.contains("{n}"), "unfilled: {}", e.message);
            assert_eq!(e.source, "application.log");
        }
    }

    #[test]
    fn rate_zero_emits_nothing() {
        let mut g = NoiseGenerator::new(SimRng::seed_from(1), 0.0);
        assert!(g.maybe_emit(SimTime::ZERO).is_none());
    }

    #[test]
    fn noise_does_not_match_operation_rules() {
        let rules = crate::process_def::rolling_upgrade_rules();
        let mut g = NoiseGenerator::new(SimRng::seed_from(2), 1.0);
        for _ in 0..100 {
            let e = g.emit(SimTime::ZERO);
            assert!(rules.match_line(&e.message).is_none(), "{}", e.message);
        }
    }
}
