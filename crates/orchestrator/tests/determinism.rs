//! Determinism and behavioural tests of the orchestrator.

use pod_cloud::{Cloud, CloudConfig};
use pod_orchestrator::{
    CollectingObserver, FaultInjector, FaultType, NoiseGenerator, RollingUpgrade, UpgradeConfig,
    UpgradeObserver,
};
use pod_sim::{Clock, SimRng, SimTime};

fn build(seed: u64, n: u32) -> (Cloud, UpgradeConfig) {
    let cloud = Cloud::new(
        Clock::new(),
        SimRng::seed_from(seed),
        CloudConfig::default(),
    );
    let ami_v1 = cloud.admin_create_ami("app", "1.0");
    let ami_v2 = cloud.admin_create_ami("app", "2.0");
    let sg = cloud.admin_create_security_group("web", &[80]);
    let kp = cloud.admin_create_key_pair("prod");
    let elb = cloud.admin_create_elb("front");
    let lc = cloud.admin_create_launch_config("lc-v1", ami_v1, "m1.small", kp, sg);
    let asg = cloud.admin_create_asg("pm--asg", lc, 1, 40, n, Some(elb.clone()));
    (
        cloud.clone(),
        UpgradeConfig::new("pm", asg, elb, ami_v2, "2.0"),
    )
}

fn run_log(seed: u64, n: u32) -> Vec<String> {
    let (cloud, config) = build(seed, n);
    let mut upgrade = RollingUpgrade::new(cloud, config, "run-1");
    let mut obs = CollectingObserver::default();
    upgrade.run(&mut obs);
    obs.events
        .iter()
        .map(|e| format!("{} {}", e.timestamp, e.message))
        .collect()
}

#[test]
fn identical_seeds_produce_identical_logs() {
    assert_eq!(run_log(7, 4), run_log(7, 4));
}

#[test]
fn different_seeds_produce_different_instance_ids() {
    assert_ne!(run_log(7, 4), run_log(8, 4));
}

#[test]
fn log_volume_scales_with_cluster_size() {
    let small = run_log(3, 2).len();
    let large = run_log(3, 8).len();
    assert!(large > small * 2, "small={small} large={large}");
}

#[test]
fn batch_size_changes_order_but_replaces_everything() {
    for batch in [1usize, 2, 4] {
        let (cloud, mut config) = build(11, 8);
        config.batch_size = batch;
        let asg = config.asg.clone();
        let mut upgrade = RollingUpgrade::new(cloud.clone(), config, "run-1");
        let mut obs = CollectingObserver::default();
        let report = upgrade.run(&mut obs);
        assert!(report.outcome.is_success(), "batch {batch}");
        let active = cloud.admin_asg_active_instances(&asg);
        assert_eq!(active.len(), 8);
        assert!(active.iter().all(|i| i.version == "2.0"), "batch {batch}");
    }
}

#[test]
fn injection_mid_run_changes_later_instances_only() {
    struct Inject<'c> {
        at: SimTime,
        injector: Option<FaultInjector>,
        config: &'c UpgradeConfig,
        rng: SimRng,
    }
    impl UpgradeObserver for Inject<'_> {
        fn on_log(&mut self, _e: pod_log::LogEvent) {}
        fn on_tick(&mut self, cloud: &Cloud, now: SimTime) {
            if now >= self.at {
                if let Some(mut injector) = self.injector.take() {
                    injector.inject(
                        cloud,
                        self.config,
                        &format!("{}-run-1", self.config.new_launch_config),
                        &mut self.rng,
                    );
                }
            }
        }
    }
    let (cloud, config) = build(13, 4);
    let asg = config.asg.clone();
    let expected_ami = config.new_ami.clone();
    let mut obs = Inject {
        at: SimTime::from_secs(150),
        injector: Some(FaultInjector::new(FaultType::AmiChangedDuringUpgrade)),
        config: &config,
        rng: SimRng::seed_from(1),
    };
    let mut upgrade = RollingUpgrade::new(cloud.clone(), config.clone(), "run-1");
    let report = upgrade.run(&mut obs);
    assert!(report.outcome.is_success());
    let active = cloud.admin_asg_active_instances(&asg);
    let wrong = active.iter().filter(|i| i.ami != expected_ami).count();
    // At least one instance was replaced before the injection (correct AMI)
    // and at least one after (rogue AMI).
    assert!(wrong >= 1, "some instance must carry the rogue AMI");
    assert!(
        wrong < 4,
        "the pre-injection replacements keep the right AMI"
    );
}

#[test]
fn noise_generator_is_deterministic_and_rate_bounded() {
    let sample = |seed| -> Vec<String> {
        let mut g = NoiseGenerator::new(SimRng::seed_from(seed), 0.5);
        (0..100)
            .filter_map(|i| g.maybe_emit(SimTime::from_secs(i)))
            .map(|e| e.message)
            .collect()
    };
    assert_eq!(sample(9), sample(9));
    let lines = sample(9);
    assert!(!lines.is_empty() && lines.len() < 100);
}
