//! Historical timing profiles mined from operation logs.
//!
//! The paper sets its timer values "based on measured historical timing
//! profiles and process mining", with timeouts "set based on experiments,
//! at the 95% percentile". This module measures, per activity, the gap
//! between an activity's log line and the preceding line of the same trace
//! — the step duration — and derives percentile-based timeout
//! recommendations from a corpus of successful runs.

use std::collections::BTreeMap;

use pod_log::{LogEvent, RuleBook};
use pod_sim::{SimDuration, SimTime};

/// Per-activity duration samples mined from logs.
#[derive(Debug, Clone, Default)]
pub struct ActivityTimings {
    samples: BTreeMap<String, Vec<SimDuration>>,
}

impl ActivityTimings {
    /// Measures step durations from a chronological event stream.
    ///
    /// For every trace (selected by `trace_of`), the duration attributed to
    /// activity `A` is the gap between the line tagged `A` and the previous
    /// tagged line of the same trace — how long the step took to produce
    /// its completion line.
    pub fn measure(
        events: &[LogEvent],
        rules: &RuleBook,
        trace_of: impl Fn(&LogEvent) -> Option<String>,
    ) -> ActivityTimings {
        let mut last_seen: BTreeMap<String, SimTime> = BTreeMap::new();
        let mut timings = ActivityTimings::default();
        for event in events {
            let Some(trace) = trace_of(event) else {
                continue;
            };
            let Some(m) = rules.match_line(&event.message) else {
                continue;
            };
            if let Some(prev) = last_seen.get(&trace) {
                timings
                    .samples
                    .entry(m.activity.clone())
                    .or_default()
                    .push(event.timestamp.duration_since(*prev));
            }
            last_seen.insert(trace, event.timestamp);
        }
        for durations in timings.samples.values_mut() {
            durations.sort_unstable();
        }
        timings
    }

    /// Activities with at least one sample, sorted.
    pub fn activities(&self) -> Vec<&str> {
        self.samples.keys().map(String::as_str).collect()
    }

    /// Number of samples for an activity.
    pub fn sample_count(&self, activity: &str) -> usize {
        self.samples.get(activity).map(Vec::len).unwrap_or(0)
    }

    /// Mean duration of an activity, if sampled.
    pub fn mean(&self, activity: &str) -> Option<SimDuration> {
        let s = self.samples.get(activity)?;
        if s.is_empty() {
            return None;
        }
        let total: u64 = s.iter().map(|d| d.as_micros()).sum();
        Some(SimDuration::from_micros(total / s.len() as u64))
    }

    /// The `q`-quantile (0 < q ≤ 1, nearest rank) of an activity's
    /// duration, if sampled.
    pub fn percentile(&self, activity: &str, q: f64) -> Option<SimDuration> {
        assert!(q > 0.0 && q <= 1.0, "percentile requires 0 < q <= 1");
        let s = self.samples.get(activity)?;
        if s.is_empty() {
            return None;
        }
        let rank = ((s.len() as f64) * q).ceil() as usize;
        Some(s[rank.clamp(1, s.len()) - 1])
    }

    /// The paper's timeout recommendation for a step: the 95th percentile
    /// of its historical duration, plus proportional slack.
    ///
    /// Returns `None` when the activity was never observed.
    pub fn recommended_timeout(&self, activity: &str) -> Option<SimDuration> {
        let p95 = self.percentile(activity, 0.95)?;
        // 10% slack, mirroring "plus some slack time" (§III.B.3).
        Some(SimDuration::from_micros(p95.as_micros() * 11 / 10))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pod_log::{Boundary, LineRule};

    fn rules() -> RuleBook {
        let mut r = RuleBook::new();
        r.push(LineRule::new("a", Boundary::End, &["did A"]).unwrap());
        r.push(LineRule::new("b", Boundary::End, &["did B"]).unwrap());
        r
    }

    fn event(trace: &str, at_ms: u64, msg: &str) -> LogEvent {
        LogEvent::new(SimTime::from_millis(at_ms), "op.log", msg).with_field("t", trace)
    }

    #[test]
    fn measures_gaps_per_trace() {
        let events = vec![
            event("x", 0, "did A"),
            event("y", 5, "did A"),
            event("x", 100, "did B"),
            event("y", 305, "did B"),
            event("x", 150, "did A"), // next loop of trace x
        ];
        let t = ActivityTimings::measure(&events, &rules(), |e| e.field("t").map(str::to_string));
        assert_eq!(t.activities(), vec!["a", "b"]);
        // b: 100ms (trace x) and 300ms (trace y).
        assert_eq!(t.sample_count("b"), 2);
        assert_eq!(t.mean("b"), Some(SimDuration::from_millis(200)));
        assert_eq!(t.percentile("b", 0.95), Some(SimDuration::from_millis(300)));
        // a: only the second occurrence in trace x has a predecessor (50ms).
        assert_eq!(t.sample_count("a"), 1);
    }

    #[test]
    fn recommended_timeout_adds_slack() {
        let events = vec![event("x", 0, "did A"), event("x", 1000, "did B")];
        let t = ActivityTimings::measure(&events, &rules(), |e| e.field("t").map(str::to_string));
        assert_eq!(
            t.recommended_timeout("b"),
            Some(SimDuration::from_millis(1100))
        );
        assert_eq!(t.recommended_timeout("a"), None, "never measured");
    }

    #[test]
    fn unknown_activities_yield_none() {
        let t = ActivityTimings::default();
        assert!(t.mean("zzz").is_none());
        assert!(t.percentile("zzz", 0.5).is_none());
        assert_eq!(t.sample_count("zzz"), 0);
    }
}
