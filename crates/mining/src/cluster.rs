//! Log-line clustering by string distance.
//!
//! The paper clusters log lines with a string-distance metric before naming
//! the clusters and deriving regular expressions. We mask volatile tokens
//! first ([`crate::mask_line`]) so that two occurrences of the same event
//! with different ids land in the same cluster, then run a greedy
//! leader-based agglomeration: each line joins the first existing cluster
//! whose representative is within the distance threshold.

use crate::distance::normalized_token_distance;
use crate::template::mask_line;

/// Clustering tunables.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Maximum normalised token distance for a line to join a cluster.
    pub threshold: f64,
    /// Whether to mask volatile tokens before measuring distance.
    pub mask_variables: bool,
}

impl Default for ClusterConfig {
    fn default() -> ClusterConfig {
        ClusterConfig {
            threshold: 0.25,
            mask_variables: true,
        }
    }
}

/// A cluster of log lines, by index into the input slice.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cluster {
    /// The masked representative (leader) string.
    pub representative: String,
    /// Indices of member lines in the input order.
    pub members: Vec<usize>,
}

/// Clusters `lines` and returns clusters ordered by first appearance.
///
/// # Examples
///
/// ```
/// use pod_mining::{cluster_lines, ClusterConfig};
///
/// let lines = [
///     "Terminated instance i-1",
///     "Launched instance i-9 into group g",
///     "Terminated instance i-2",
/// ];
/// let clusters = cluster_lines(&lines, &ClusterConfig::default());
/// assert_eq!(clusters.len(), 2);
/// assert_eq!(clusters[0].members, vec![0, 2]);
/// ```
pub fn cluster_lines<S: AsRef<str>>(lines: &[S], config: &ClusterConfig) -> Vec<Cluster> {
    let mut clusters: Vec<Cluster> = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        let key = if config.mask_variables {
            mask_line(line.as_ref())
        } else {
            line.as_ref().to_string()
        };
        let found = clusters
            .iter_mut()
            .find(|c| normalized_token_distance(&c.representative, &key) <= config.threshold);
        match found {
            Some(c) => c.members.push(idx),
            None => clusters.push(Cluster {
                representative: key,
                members: vec![idx],
            }),
        }
    }
    clusters
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_masked_lines_share_cluster() {
        let lines = [
            "Launching a new EC2 instance: i-11111111",
            "Launching a new EC2 instance: i-22222222",
            "Launching a new EC2 instance: i-33333333",
        ];
        let clusters = cluster_lines(&lines, &ClusterConfig::default());
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0].members, vec![0, 1, 2]);
    }

    #[test]
    fn distinct_events_get_distinct_clusters() {
        let lines = [
            "Created launch configuration lc-v2",
            "Terminating EC2 instance: i-aa",
            "Waiting for ASG to start new instance",
            "Terminating EC2 instance: i-bb",
        ];
        let clusters = cluster_lines(&lines, &ClusterConfig::default());
        assert_eq!(clusters.len(), 3);
        assert_eq!(clusters[1].members, vec![1, 3]);
    }

    #[test]
    fn threshold_zero_requires_exact_masked_match() {
        let lines = ["a b c", "a b d"];
        let cfg = ClusterConfig {
            threshold: 0.0,
            mask_variables: false,
        };
        assert_eq!(cluster_lines(&lines, &cfg).len(), 2);
    }

    #[test]
    fn loose_threshold_merges_more() {
        let lines = ["a b c d", "a b c e", "x y z w"];
        let cfg = ClusterConfig {
            threshold: 0.5,
            mask_variables: false,
        };
        let clusters = cluster_lines(&lines, &cfg);
        assert_eq!(clusters.len(), 2);
    }

    #[test]
    fn empty_input_gives_no_clusters() {
        let lines: [&str; 0] = [];
        assert!(cluster_lines(&lines, &ClusterConfig::default()).is_empty());
    }
}
