//! Process discovery: directly-follows graph → BPMN model.
//!
//! "From a set of event traces, the algorithms derive causal dependencies
//! between events … by putting all such dependencies together, a process
//! model such as the one shown in Figure 2 can be derived." This module
//! implements that step: every activity becomes a task; activities with
//! multiple successors get an exclusive split gateway, activities with
//! multiple predecessors an exclusive join gateway; loops fall out of the
//! back-edges of the DFG, exactly like the upgrade loop of Figure 2.
//!
//! The construction mines sequential/loop control flow (operations
//! processes are overwhelmingly sequential); concurrency is represented as
//! exclusive choice, a standard simplification of DFG-based miners.

use std::collections::HashMap;

use pod_process::{ModelError, NodeId, ProcessModel, ProcessModelBuilder};

use crate::dfg::Dfg;

/// An error from [`discover_model`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiscoveryError {
    /// The DFG contained no activities.
    EmptyLog,
    /// The constructed model failed validation.
    Model(ModelError),
}

impl std::fmt::Display for DiscoveryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiscoveryError::EmptyLog => f.write_str("cannot discover a model from an empty log"),
            DiscoveryError::Model(e) => write!(f, "discovered model is invalid: {e}"),
        }
    }
}

impl std::error::Error for DiscoveryError {}

impl From<ModelError> for DiscoveryError {
    fn from(e: ModelError) -> Self {
        DiscoveryError::Model(e)
    }
}

/// Discovers a [`ProcessModel`] named `name` from a directly-follows graph.
///
/// # Errors
///
/// Fails on an empty DFG or if the resulting model does not validate (e.g.
/// the filtered DFG leaves activities with no path to an end).
///
/// # Examples
///
/// ```
/// use pod_mining::{discover_model, Dfg};
///
/// let traces = vec![
///     vec!["start".into(), "work".into(), "work".into(), "done".into()],
///     vec!["start".into(), "work".into(), "done".into()],
/// ];
/// let model = discover_model("mined", &Dfg::from_traces(&traces)).unwrap();
/// // Tasks come out in alphabetical (DFG) order.
/// assert_eq!(model.task_names(), vec!["done", "start", "work"]);
///
/// // The mined model replays its own traces perfectly.
/// let counts = pod_process::replay_fitness(&model, &traces);
/// assert_eq!(counts.fitness(), 1.0);
/// ```
pub fn discover_model(name: &str, dfg: &Dfg) -> Result<ProcessModel, DiscoveryError> {
    if dfg.is_empty() {
        return Err(DiscoveryError::EmptyLog);
    }
    let mut b = ProcessModelBuilder::new(name);
    let start_event = b.start();
    let end_event = b.end();

    // Task node per activity, in trace-frequency order for stable output.
    let mut task_nodes: HashMap<String, NodeId> = HashMap::new();
    for act in dfg.activities() {
        task_nodes.insert(act.to_string(), b.task(act));
    }

    // Entry point of an activity: a join gateway if it has multiple inbound
    // connections (predecessors plus possibly the start event), else the
    // task itself.
    let starts = dfg.start_activities();
    let ends = dfg.end_activities();
    let mut entry: HashMap<String, NodeId> = HashMap::new();
    for act in dfg.activities() {
        let inbound = dfg.predecessors(act).len() + usize::from(starts.contains(&act));
        let task = task_nodes[act];
        if inbound > 1 {
            let join = b.exclusive_gateway();
            b.flow(join, task);
            entry.insert(act.to_string(), join);
        } else {
            entry.insert(act.to_string(), task);
        }
    }
    // Exit point: a split gateway if multiple outbound connections
    // (successors plus possibly the end event).
    let mut exit: HashMap<String, NodeId> = HashMap::new();
    for act in dfg.activities() {
        let outbound = dfg.successors(act).len() + usize::from(ends.contains(&act));
        let task = task_nodes[act];
        if outbound > 1 {
            let split = b.exclusive_gateway();
            b.flow(task, split);
            exit.insert(act.to_string(), split);
        } else {
            exit.insert(act.to_string(), task);
        }
    }

    // Start event → entry of each start activity (via a split gateway when
    // there are several, since a BPMN start event forks all outgoing flows).
    if starts.len() > 1 {
        let split = b.exclusive_gateway();
        b.flow(start_event, split);
        for s in &starts {
            b.flow(split, entry[*s]);
        }
    } else {
        b.flow(start_event, entry[starts[0]]);
    }

    // DFG edges.
    for (from, to, _freq) in dfg.edges() {
        b.flow(exit[from], entry[to]);
    }

    // End activities → end event.
    for e in &ends {
        b.flow(exit[*e], end_event);
    }

    Ok(b.build()?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pod_process::replay_fitness;

    fn traces(specs: &[&[&str]]) -> Vec<Vec<String>> {
        specs
            .iter()
            .map(|t| t.iter().map(|s| s.to_string()).collect())
            .collect()
    }

    #[test]
    fn discovers_linear_model() {
        let t = traces(&[&["a", "b", "c"], &["a", "b", "c"], &["a", "b", "c"]]);
        let model = discover_model("lin", &Dfg::from_traces(&t)).unwrap();
        assert_eq!(model.task_names(), vec!["a", "b", "c"]);
        assert_eq!(replay_fitness(&model, &t).fitness(), 1.0);
    }

    #[test]
    fn discovers_loop_like_figure_2() {
        // Mirrors the rolling-upgrade shape: setup, then a per-instance loop,
        // then completion.
        let t = traces(&[
            &[
                "update-lc",
                "sort",
                "remove",
                "terminate",
                "wait",
                "ready",
                "remove",
                "terminate",
                "wait",
                "ready",
                "completed",
            ],
            &[
                "update-lc",
                "sort",
                "remove",
                "terminate",
                "wait",
                "ready",
                "completed",
            ],
        ]);
        let dfg = Dfg::from_traces(&t);
        assert_eq!(dfg.edge_frequency("ready", "remove"), 1, "loop back-edge");
        let model = discover_model("upgrade", &dfg).unwrap();
        assert_eq!(replay_fitness(&model, &t).fitness(), 1.0);
        // Longer loops still replay.
        let long = traces(&[&[
            "update-lc",
            "sort",
            "remove",
            "terminate",
            "wait",
            "ready",
            "remove",
            "terminate",
            "wait",
            "ready",
            "remove",
            "terminate",
            "wait",
            "ready",
            "completed",
        ]]);
        assert_eq!(replay_fitness(&model, &long).fitness(), 1.0);
    }

    #[test]
    fn discovers_choice() {
        let t = traces(&[&["a", "b", "d"], &["a", "c", "d"]]);
        let model = discover_model("choice", &Dfg::from_traces(&t)).unwrap();
        assert_eq!(replay_fitness(&model, &t).fitness(), 1.0);
        // But not the unobserved interleaving b-then-c.
        let bad = traces(&[&["a", "b", "c", "d"]]);
        assert!(replay_fitness(&model, &bad).fitness() < 1.0);
    }

    #[test]
    fn multiple_start_and_end_activities() {
        let t = traces(&[&["a", "m", "x"], &["b", "m", "y"]]);
        let model = discover_model("multi", &Dfg::from_traces(&t)).unwrap();
        assert_eq!(replay_fitness(&model, &t).fitness(), 1.0);
    }

    #[test]
    fn empty_log_is_an_error() {
        assert_eq!(
            discover_model("e", &Dfg::default()).unwrap_err(),
            DiscoveryError::EmptyLog
        );
    }

    #[test]
    fn model_rejects_out_of_order_replay() {
        let t = traces(&[&["a", "b", "c"], &["a", "b", "c"]]);
        let model = discover_model("lin", &Dfg::from_traces(&t)).unwrap();
        let mut checker = pod_process::ConformanceChecker::new(&model);
        assert!(checker.replay("t", "b").is_error());
    }
}
