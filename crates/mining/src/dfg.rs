//! The directly-follows graph (DFG) — the core statistic of discovery.

use std::collections::BTreeMap;

/// A directly-follows graph over activity names, with frequencies.
///
/// # Examples
///
/// ```
/// use pod_mining::Dfg;
///
/// let traces = vec![
///     vec!["a".to_string(), "b".to_string(), "c".to_string()],
///     vec!["a".to_string(), "b".to_string(), "b".to_string(), "c".to_string()],
/// ];
/// let dfg = Dfg::from_traces(&traces);
/// assert_eq!(dfg.edge_frequency("a", "b"), 2);
/// assert_eq!(dfg.edge_frequency("b", "b"), 1);
/// assert_eq!(dfg.start_activities(), vec!["a"]);
/// assert_eq!(dfg.end_activities(), vec!["c"]);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Dfg {
    edges: BTreeMap<(String, String), usize>,
    starts: BTreeMap<String, usize>,
    ends: BTreeMap<String, usize>,
    activity_counts: BTreeMap<String, usize>,
}

impl Dfg {
    /// Builds the DFG from traces (sequences of activity names). Empty
    /// traces are ignored.
    pub fn from_traces(traces: &[Vec<String>]) -> Dfg {
        let mut dfg = Dfg::default();
        for trace in traces {
            if trace.is_empty() {
                continue;
            }
            *dfg.starts.entry(trace[0].clone()).or_default() += 1;
            *dfg.ends.entry(trace[trace.len() - 1].clone()).or_default() += 1;
            for act in trace {
                *dfg.activity_counts.entry(act.clone()).or_default() += 1;
            }
            for pair in trace.windows(2) {
                *dfg.edges
                    .entry((pair[0].clone(), pair[1].clone()))
                    .or_default() += 1;
            }
        }
        dfg
    }

    /// All activities, sorted.
    pub fn activities(&self) -> Vec<&str> {
        self.activity_counts.keys().map(String::as_str).collect()
    }

    /// Occurrence count of one activity.
    pub fn activity_frequency(&self, activity: &str) -> usize {
        self.activity_counts.get(activity).copied().unwrap_or(0)
    }

    /// Directed edges `(from, to, frequency)`, sorted.
    pub fn edges(&self) -> Vec<(&str, &str, usize)> {
        self.edges
            .iter()
            .map(|((a, b), f)| (a.as_str(), b.as_str(), *f))
            .collect()
    }

    /// Frequency of one directly-follows pair.
    pub fn edge_frequency(&self, from: &str, to: &str) -> usize {
        self.edges
            .get(&(from.to_string(), to.to_string()))
            .copied()
            .unwrap_or(0)
    }

    /// Activities that begin traces, sorted.
    pub fn start_activities(&self) -> Vec<&str> {
        self.starts.keys().map(String::as_str).collect()
    }

    /// Activities that end traces, sorted.
    pub fn end_activities(&self) -> Vec<&str> {
        self.ends.keys().map(String::as_str).collect()
    }

    /// Successors of one activity, sorted.
    pub fn successors(&self, activity: &str) -> Vec<&str> {
        self.edges
            .keys()
            .filter(|(a, _)| a == activity)
            .map(|(_, b)| b.as_str())
            .collect()
    }

    /// Predecessors of one activity, sorted.
    pub fn predecessors(&self, activity: &str) -> Vec<&str> {
        let mut preds: Vec<&str> = self
            .edges
            .keys()
            .filter(|(_, b)| b == activity)
            .map(|(a, _)| a.as_str())
            .collect();
        preds.sort();
        preds
    }

    /// Returns a copy with edges below `min_frequency` removed — the noise
    /// filtering knob every discovery tool exposes. Start/end/activity
    /// counts are preserved.
    pub fn filter_edges(&self, min_frequency: usize) -> Dfg {
        Dfg {
            edges: self
                .edges
                .iter()
                .filter(|(_, f)| **f >= min_frequency)
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
            starts: self.starts.clone(),
            ends: self.ends.clone(),
            activity_counts: self.activity_counts.clone(),
        }
    }

    /// Whether the graph is empty.
    pub fn is_empty(&self) -> bool {
        self.activity_counts.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn traces(specs: &[&[&str]]) -> Vec<Vec<String>> {
        specs
            .iter()
            .map(|t| t.iter().map(|s| s.to_string()).collect())
            .collect()
    }

    #[test]
    fn builds_loop_edges() {
        let dfg = Dfg::from_traces(&traces(&[&["a", "b", "c", "b", "c", "d"]]));
        assert_eq!(dfg.edge_frequency("c", "b"), 1);
        assert_eq!(dfg.edge_frequency("b", "c"), 2);
        assert_eq!(dfg.successors("c"), vec!["b", "d"]);
        assert_eq!(dfg.predecessors("b"), vec!["a", "c"]);
    }

    #[test]
    fn tracks_start_and_end_frequencies() {
        let dfg = Dfg::from_traces(&traces(&[&["a", "b"], &["a", "c"], &["x", "b"]]));
        assert_eq!(dfg.start_activities(), vec!["a", "x"]);
        assert_eq!(dfg.end_activities(), vec!["b", "c"]);
        assert_eq!(dfg.activity_frequency("a"), 2);
    }

    #[test]
    fn filter_drops_rare_edges() {
        let dfg = Dfg::from_traces(&traces(&[&["a", "b"], &["a", "b"], &["a", "c"]]));
        let filtered = dfg.filter_edges(2);
        assert_eq!(filtered.edge_frequency("a", "b"), 2);
        assert_eq!(filtered.edge_frequency("a", "c"), 0);
        assert_eq!(filtered.activity_frequency("c"), 1, "activities retained");
    }

    #[test]
    fn empty_traces_ignored() {
        let dfg = Dfg::from_traces(&traces(&[&[]]));
        assert!(dfg.is_empty());
    }
}
