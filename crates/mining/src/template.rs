//! Variable masking and template derivation.
//!
//! Log lines contain volatile substrings — instance ids, AMI ids, numbers,
//! timestamps — that must be abstracted before clustering and before regular
//! expressions can be derived. A [`Template`] captures the constant skeleton
//! of a cluster of lines plus typed wildcards for the volatile positions.

use pod_regex::Regex;

/// The recognised classes of volatile tokens, in masking priority order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VariableKind {
    /// A timestamp like `2013-10-24` or `11:41:48,312`.
    Timestamp,
    /// An EC2 instance id (`i-…`).
    InstanceId,
    /// An AMI id (`ami-…`).
    AmiId,
    /// A security-group id (`sg-…`).
    SecurityGroupId,
    /// A launch-configuration name (`lc-…`).
    LaunchConfigName,
    /// A bare number.
    Number,
    /// Anything else that varies.
    Other,
}

impl VariableKind {
    /// The mask token used during clustering.
    pub fn mask(self) -> &'static str {
        match self {
            VariableKind::Timestamp => "<ts>",
            VariableKind::InstanceId => "<instance>",
            VariableKind::AmiId => "<ami>",
            VariableKind::SecurityGroupId => "<sg>",
            VariableKind::LaunchConfigName => "<lc>",
            VariableKind::Number => "<num>",
            VariableKind::Other => "<*>",
        }
    }

    /// The regex fragment this variable matches, with a named capture where
    /// the id is useful downstream.
    pub fn pattern(self) -> &'static str {
        match self {
            VariableKind::Timestamp => r"[\d:,.-]+",
            VariableKind::InstanceId => r"(?P<instanceid>i-[0-9a-f]+)",
            VariableKind::AmiId => r"(?P<amiid>ami-[0-9a-f]+)",
            VariableKind::SecurityGroupId => r"(?P<sgid>sg-[0-9a-f]+)",
            VariableKind::LaunchConfigName => r"(?P<lc>lc-[\w.-]+)",
            VariableKind::Number => r"\d+",
            VariableKind::Other => r"\S+",
        }
    }

    /// Classifies a single token.
    pub fn classify(token: &str) -> Option<VariableKind> {
        fn hex_suffix(token: &str, prefix: &str) -> bool {
            token
                .strip_prefix(prefix)
                .is_some_and(|rest| !rest.is_empty() && rest.chars().all(|c| c.is_ascii_hexdigit()))
        }
        let bare = token.trim_matches(|c: char| ",.;:()[]".contains(c));
        if bare.is_empty() {
            return None;
        }
        if hex_suffix(bare, "i-") {
            Some(VariableKind::InstanceId)
        } else if hex_suffix(bare, "ami-") {
            Some(VariableKind::AmiId)
        } else if hex_suffix(bare, "sg-") {
            Some(VariableKind::SecurityGroupId)
        } else if bare.starts_with("lc-") && bare.len() > 3 {
            Some(VariableKind::LaunchConfigName)
        } else if bare.chars().all(|c| c.is_ascii_digit()) {
            Some(VariableKind::Number)
        } else if bare.len() >= 8
            && bare
                .chars()
                .all(|c| c.is_ascii_digit() || ":-,.".contains(c))
        {
            Some(VariableKind::Timestamp)
        } else {
            None
        }
    }
}

/// Replaces volatile tokens with their masks, producing the string used for
/// clustering.
///
/// # Examples
///
/// ```
/// use pod_mining::mask_line;
///
/// assert_eq!(
///     mask_line("Terminated instance i-7df34041 after 42 s"),
///     "Terminated instance <instance> after <num> s"
/// );
/// ```
pub fn mask_line(line: &str) -> String {
    line.split_whitespace()
        .map(|t| match VariableKind::classify(t) {
            Some(kind) => kind.mask().to_string(),
            None => t.to_string(),
        })
        .collect::<Vec<_>>()
        .join(" ")
}

/// One position of a template.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TemplateToken {
    /// A constant token.
    Literal(String),
    /// A volatile token of a known class.
    Variable(VariableKind),
}

/// The constant skeleton of a cluster of log lines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Template {
    tokens: Vec<TemplateToken>,
}

impl Template {
    /// Derives a template from a non-empty cluster of raw lines.
    ///
    /// Lines are tokenised by whitespace; positions that are identical in
    /// every line stay literal, positions that vary (or that look like ids /
    /// numbers in any line) become typed variables. Lines whose token count
    /// differs from the cluster majority are ignored for position analysis.
    pub fn derive(lines: &[&str]) -> Template {
        assert!(!lines.is_empty(), "cannot derive a template from no lines");
        let tokenised: Vec<Vec<&str>> = lines
            .iter()
            .map(|l| l.split_whitespace().collect())
            .collect();
        // Majority token count.
        let mut counts: Vec<(usize, usize)> = Vec::new();
        for t in &tokenised {
            match counts.iter_mut().find(|(len, _)| *len == t.len()) {
                Some((_, c)) => *c += 1,
                None => counts.push((t.len(), 1)),
            }
        }
        counts.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let majority_len = counts[0].0;
        let aligned: Vec<&Vec<&str>> = tokenised
            .iter()
            .filter(|t| t.len() == majority_len)
            .collect();
        let mut tokens = Vec::with_capacity(majority_len);
        for pos in 0..majority_len {
            let first = aligned[0][pos];
            let constant = aligned.iter().all(|l| l[pos] == first);
            let classified = VariableKind::classify(first);
            match (constant, classified) {
                (true, None) => tokens.push(TemplateToken::Literal(first.to_string())),
                (true, Some(kind)) | (false, Some(kind)) => {
                    tokens.push(TemplateToken::Variable(kind))
                }
                (false, None) => tokens.push(TemplateToken::Variable(VariableKind::Other)),
            }
        }
        Template { tokens }
    }

    /// The template's tokens.
    pub fn tokens(&self) -> &[TemplateToken] {
        &self.tokens
    }

    /// A human-readable activity name: the first few literal words,
    /// lowercased and hyphenated — standing in for the paper's manual
    /// cluster naming by the analyst.
    pub fn activity_name(&self) -> String {
        let words: Vec<String> = self
            .tokens
            .iter()
            .filter_map(|t| match t {
                TemplateToken::Literal(w) => {
                    let w: String = w
                        .chars()
                        .filter(|c| c.is_ascii_alphanumeric())
                        .collect::<String>()
                        .to_lowercase();
                    if w.is_empty() {
                        None
                    } else {
                        Some(w)
                    }
                }
                TemplateToken::Variable(_) => None,
            })
            .take(5)
            .collect();
        if words.is_empty() {
            "unnamed".to_string()
        } else {
            words.join("-")
        }
    }

    /// The regular expression (as a pattern string) matching lines of this
    /// template, with named captures for typed variables.
    pub fn to_pattern(&self) -> String {
        let mut parts = Vec::with_capacity(self.tokens.len());
        for t in &self.tokens {
            match t {
                TemplateToken::Literal(w) => parts.push(escape_literal(w)),
                TemplateToken::Variable(kind) => parts.push(kind.pattern().to_string()),
            }
        }
        parts.join(r"\s+")
    }

    /// The compiled regex for this template.
    ///
    /// # Errors
    ///
    /// Propagates pattern-compilation failures (should not occur for
    /// templates derived from real lines).
    pub fn to_regex(&self) -> Result<Regex, pod_regex::ParseError> {
        Regex::new(&self.to_pattern())
    }
}

fn escape_literal(lit: &str) -> String {
    let mut out = String::with_capacity(lit.len());
    for c in lit.chars() {
        if "\\.+*?()|[]{}^$".contains(c) {
            out.push('\\');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_recognises_id_families() {
        assert_eq!(
            VariableKind::classify("i-7df34041"),
            Some(VariableKind::InstanceId)
        );
        assert_eq!(
            VariableKind::classify("ami-750c9e4f"),
            Some(VariableKind::AmiId)
        );
        assert_eq!(
            VariableKind::classify("sg-abc123"),
            Some(VariableKind::SecurityGroupId)
        );
        assert_eq!(
            VariableKind::classify("lc-v2"),
            Some(VariableKind::LaunchConfigName)
        );
        assert_eq!(VariableKind::classify("42"), Some(VariableKind::Number));
        assert_eq!(
            VariableKind::classify("11:41:48,312"),
            Some(VariableKind::Timestamp)
        );
        assert_eq!(VariableKind::classify("instance"), None);
        // Punctuation-wrapped ids still classify.
        assert_eq!(
            VariableKind::classify("i-7df34041."),
            Some(VariableKind::InstanceId)
        );
    }

    #[test]
    fn masking_preserves_structure() {
        assert_eq!(
            mask_line("Pushing ami-750c9e4f into group pm--asg for app pm"),
            "Pushing <ami> into group pm--asg for app pm"
        );
    }

    #[test]
    fn template_from_uniform_cluster() {
        let lines = [
            "Terminated instance i-1a2b3c4d",
            "Terminated instance i-99887766",
            "Terminated instance i-deadbeef",
        ];
        let t = Template::derive(&lines);
        assert_eq!(t.activity_name(), "terminated-instance");
        let re = t.to_regex().unwrap();
        let caps = re.captures("Terminated instance i-0f0f0f0f").unwrap();
        assert_eq!(caps.name("instanceid").unwrap().as_str(), "i-0f0f0f0f");
        assert!(!re.is_match("Launched instance i-0f0f0f0f"));
    }

    #[test]
    fn varying_word_becomes_wildcard() {
        let lines = ["state went up", "state went down"];
        let t = Template::derive(&lines);
        let re = t.to_regex().unwrap();
        assert!(re.is_match("state went sideways"));
        assert!(!re.is_match("mood went sideways"));
    }

    #[test]
    fn minority_length_lines_are_ignored() {
        let lines = [
            "Launched instance i-1 ok",
            "Launched instance i-2 ok",
            "Launched instance i-3 ok extra-token",
        ];
        let t = Template::derive(&lines);
        assert_eq!(t.tokens().len(), 4);
    }

    #[test]
    fn name_falls_back_when_no_literals() {
        let lines = ["42 i-aa", "17 i-bb"];
        let t = Template::derive(&lines);
        assert_eq!(t.activity_name(), "unnamed");
    }

    #[test]
    fn single_line_cluster_works() {
        let t = Template::derive(&["Sorting 4 instances by launch time"]);
        assert_eq!(t.activity_name(), "sorting-instances-by-launch-time");
        assert!(t
            .to_regex()
            .unwrap()
            .is_match("Sorting 20 instances by launch time"));
    }
}
