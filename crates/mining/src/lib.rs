//! Process mining for POD-Diagnosis (the offline half of the approach).
//!
//! The paper discovers the rolling-upgrade process model from Asgard logs:
//! lines are clustered by string distance, clusters are named and turned
//! into regular expressions (transformation rules), the tagged log is fed
//! to a discovery algorithm, and the result is the BPMN model of Figure 2.
//! This crate implements the full pipeline, replacing the off-the-shelf
//! Disco tool the paper used:
//!
//! - [`normalized_token_distance`] / [`levenshtein`] — string distances;
//! - [`mask_line`] / [`Template`] — variable masking and template
//!   derivation with typed named captures;
//! - [`cluster_lines`] — leader-based agglomerative clustering;
//! - [`Dfg`] — the directly-follows graph with frequencies;
//! - [`discover_model`] — DFG → validated BPMN model;
//! - [`mine_process`] — the end-to-end pipeline from raw
//!   [`pod_log::LogEvent`]s to a [`MinedProcess`] (model + rule book +
//!   traces), evaluated with [`pod_process::replay_fitness`];
//! - [`ActivityTimings`] — historical per-step timing profiles, from which
//!   the paper's "95% percentile" timeout values are derived.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cluster;
mod dfg;
mod discovery;
mod distance;
mod pipeline;
mod template;
mod timing;

pub use cluster::{cluster_lines, Cluster, ClusterConfig};
pub use dfg::Dfg;
pub use discovery::{discover_model, DiscoveryError};
pub use distance::{levenshtein, normalized_token_distance, token_levenshtein};
pub use pipeline::{mine_process, MinedProcess, MiningConfig, MiningError};
pub use template::{mask_line, Template, TemplateToken, VariableKind};
pub use timing::ActivityTimings;
