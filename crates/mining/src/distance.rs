//! String distances used for log-line clustering.

/// Levenshtein edit distance between two token slices.
///
/// Operating on whitespace tokens rather than characters makes the distance
/// robust to long variable substrings (ids, timestamps) that would dominate
/// a character-level metric.
pub fn token_levenshtein(a: &[&str], b: &[&str]) -> usize {
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, ta) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, tb) in b.iter().enumerate() {
            let cost = usize::from(ta != tb);
            cur[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Character-level Levenshtein distance.
pub fn levenshtein(a: &str, b: &str) -> usize {
    let av: Vec<&str> = a.split("").filter(|s| !s.is_empty()).collect();
    let bv: Vec<&str> = b.split("").filter(|s| !s.is_empty()).collect();
    token_levenshtein(&av, &bv)
}

/// Normalised token distance in `[0, 1]`: edit distance divided by the
/// longer token count. Two identical lines score 0; completely different
/// lines score 1.
///
/// # Examples
///
/// ```
/// use pod_mining::normalized_token_distance;
///
/// let d = normalized_token_distance(
///     "Terminated instance <id>",
///     "Terminated instance <id> cleanly",
/// );
/// assert!(d > 0.0 && d < 0.5);
/// assert_eq!(normalized_token_distance("a b c", "a b c"), 0.0);
/// ```
pub fn normalized_token_distance(a: &str, b: &str) -> f64 {
    let at: Vec<&str> = a.split_whitespace().collect();
    let bt: Vec<&str> = b.split_whitespace().collect();
    let max = at.len().max(bt.len());
    if max == 0 {
        return 0.0;
    }
    token_levenshtein(&at, &bt) as f64 / max as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_levenshtein_cases() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("same", "same"), 0);
    }

    #[test]
    fn token_distance_counts_tokens() {
        assert_eq!(token_levenshtein(&["a", "b", "c"], &["a", "x", "c"]), 1);
        assert_eq!(token_levenshtein(&["a"], &["a", "b", "c"]), 2);
    }

    #[test]
    fn normalized_bounds() {
        assert_eq!(normalized_token_distance("", ""), 0.0);
        assert_eq!(normalized_token_distance("a b", "c d"), 1.0);
        let d = normalized_token_distance("a b c d", "a b c x");
        assert!((d - 0.25).abs() < 1e-9);
    }

    #[test]
    fn symmetric() {
        let (a, b) = ("Launching instance i-1 now", "Launching instance i-2");
        assert_eq!(
            normalized_token_distance(a, b),
            normalized_token_distance(b, a)
        );
    }
}
