//! The end-to-end offline mining pipeline (Section III.A of the paper):
//! raw operation logs → clusters → named activities with regular
//! expressions → tagged traces → directly-follows graph → process model.

use pod_log::{Boundary, LineRule, LogEvent, RuleBook};

use crate::cluster::{cluster_lines, ClusterConfig};
use crate::dfg::Dfg;
use crate::discovery::{discover_model, DiscoveryError};
use crate::template::Template;

/// The artefacts produced by mining a set of operation logs.
#[derive(Debug)]
pub struct MinedProcess {
    /// The discovered process model.
    pub model: pod_process::ProcessModel,
    /// Transformation rules mapping raw lines to activities — ready to be
    /// installed in a local log processor.
    pub rules: RuleBook,
    /// The mined directly-follows graph (for inspection / rendering).
    pub dfg: Dfg,
    /// Activity traces after tagging, one per process instance.
    pub traces: Vec<Vec<String>>,
}

/// Configuration of the mining pipeline.
#[derive(Debug, Clone)]
pub struct MiningConfig {
    /// Clustering tunables.
    pub clustering: ClusterConfig,
    /// Minimum directly-follows frequency to keep an edge (noise filter).
    pub min_edge_frequency: usize,
    /// Name for the discovered model.
    pub model_name: String,
}

impl Default for MiningConfig {
    fn default() -> MiningConfig {
        MiningConfig {
            clustering: ClusterConfig::default(),
            min_edge_frequency: 1,
            model_name: "mined-process".to_string(),
        }
    }
}

/// An error from [`mine_process`].
#[derive(Debug)]
pub enum MiningError {
    /// No input events were supplied.
    NoEvents,
    /// Discovery failed.
    Discovery(DiscoveryError),
    /// A derived pattern failed to compile (template bug).
    Pattern(pod_regex::ParseError),
}

impl std::fmt::Display for MiningError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MiningError::NoEvents => f.write_str("no events to mine from"),
            MiningError::Discovery(e) => write!(f, "discovery failed: {e}"),
            MiningError::Pattern(e) => write!(f, "derived pattern invalid: {e}"),
        }
    }
}

impl std::error::Error for MiningError {}

/// Mines a process from operation-log events.
///
/// `trace_of` extracts the process-instance id an event belongs to (events
/// yielding `None` are skipped). Events must already be in chronological
/// order per trace, which is how log files arrive.
///
/// # Errors
///
/// Fails when no events are supplied, a derived regex does not compile, or
/// the mined DFG cannot be turned into a valid model.
///
/// # Examples
///
/// ```
/// use pod_log::LogEvent;
/// use pod_mining::{mine_process, MiningConfig};
/// use pod_sim::SimTime;
///
/// let mut events = Vec::new();
/// for run in 0..3 {
///     for (i, msg) in [
///         "Starting rolling upgrade task",
///         "Terminating EC2 instance: i-1a2b3c4d",
///         "Instance i-99887766 is ready for use",
///         "Rolling upgrade task completed",
///     ].iter().enumerate() {
///         events.push(
///             LogEvent::new(SimTime::from_millis((run * 10 + i) as u64), "asgard.log", *msg)
///                 .with_field("run", format!("run-{run}")),
///         );
///     }
/// }
/// let mined = mine_process(&events, |e| e.field("run").map(str::to_string),
///                          &MiningConfig::default()).unwrap();
/// assert_eq!(mined.traces.len(), 3);
/// assert_eq!(mined.model.task_names().len(), 4);
/// ```
pub fn mine_process(
    events: &[LogEvent],
    trace_of: impl Fn(&LogEvent) -> Option<String>,
    config: &MiningConfig,
) -> Result<MinedProcess, MiningError> {
    if events.is_empty() {
        return Err(MiningError::NoEvents);
    }
    // 1. Cluster the raw lines.
    let messages: Vec<&str> = events.iter().map(|e| e.message.as_str()).collect();
    let clusters = cluster_lines(&messages, &config.clustering);

    // 2. Derive a template, an activity name and a rule per cluster.
    let mut rules = RuleBook::new();
    let mut names: Vec<String> = Vec::new();
    let mut activity_of_line: Vec<Option<usize>> = vec![None; messages.len()];
    for (ci, cluster) in clusters.iter().enumerate() {
        let lines: Vec<&str> = cluster.members.iter().map(|i| messages[*i]).collect();
        let template = Template::derive(&lines);
        let mut name = template.activity_name();
        // Disambiguate duplicate names deterministically.
        if names.contains(&name) {
            name = format!("{name}-{ci}");
        }
        let pattern = template.to_pattern();
        rules.push(
            LineRule::new(name.clone(), Boundary::End, &[pattern]).map_err(MiningError::Pattern)?,
        );
        names.push(name);
        for m in &cluster.members {
            activity_of_line[*m] = Some(ci);
        }
    }

    // 3. Build traces (events are chronological within each trace).
    let mut trace_ids: Vec<String> = Vec::new();
    let mut traces: Vec<Vec<String>> = Vec::new();
    for (i, event) in events.iter().enumerate() {
        let Some(tid) = trace_of(event) else { continue };
        let Some(cluster_idx) = activity_of_line[i] else {
            continue;
        };
        let pos = match trace_ids.iter().position(|t| *t == tid) {
            Some(p) => p,
            None => {
                trace_ids.push(tid);
                traces.push(Vec::new());
                trace_ids.len() - 1
            }
        };
        traces[pos].push(names[cluster_idx].clone());
    }

    // 4. DFG + discovery.
    let dfg = Dfg::from_traces(&traces).filter_edges(config.min_edge_frequency);
    let model = discover_model(&config.model_name, &dfg).map_err(MiningError::Discovery)?;
    Ok(MinedProcess {
        model,
        rules,
        dfg,
        traces,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pod_sim::SimTime;

    fn asgard_run(run: usize, loops: usize) -> Vec<LogEvent> {
        let mut msgs = vec![
            "Starting rolling upgrade task for group pm--asg".to_string(),
            "Created launch configuration lc-v2".to_string(),
            "Sorting 4 instances by launch time".to_string(),
        ];
        for i in 0..loops {
            msgs.push(format!(
                "Deregistered instance i-{i:08x} from load balancer"
            ));
            msgs.push(format!("Terminating EC2 instance: i-{i:08x}"));
            msgs.push("Waiting for ASG to start new instance".to_string());
            msgs.push(format!("Instance i-{:08x} is ready for use", i + 100));
        }
        msgs.push("Rolling upgrade task completed".to_string());
        msgs.iter()
            .enumerate()
            .map(|(i, m)| {
                LogEvent::new(
                    SimTime::from_millis((run * 1000 + i) as u64),
                    "asgard.log",
                    m.clone(),
                )
                .with_field("run", format!("run-{run}"))
            })
            .collect()
    }

    #[test]
    fn mines_rolling_upgrade_shape() {
        let mut events = Vec::new();
        for run in 0..5 {
            events.extend(asgard_run(run, 2 + run % 3));
        }
        let mined = mine_process(
            &events,
            |e| e.field("run").map(str::to_string),
            &MiningConfig {
                model_name: "rolling-upgrade".to_string(),
                ..MiningConfig::default()
            },
        )
        .unwrap();
        assert_eq!(mined.traces.len(), 5);
        // 8 distinct activities: start, create-lc, sort, deregister,
        // terminate, wait, ready, completed.
        assert_eq!(mined.model.task_names().len(), 8);
        // The mined model perfectly replays its own traces.
        let counts = pod_process::replay_fitness(&mined.model, &mined.traces);
        assert_eq!(counts.fitness(), 1.0);
        // And generalises to an unseen longer run.
        let extra = asgard_run(99, 6);
        let extra_trace: Vec<String> = extra
            .iter()
            .filter_map(|e| mined.rules.match_line(&e.message).map(|m| m.activity))
            .collect();
        assert_eq!(extra_trace.len(), extra.len(), "rules tag every line");
        let counts = pod_process::replay_fitness(&mined.model, &[extra_trace]);
        assert_eq!(counts.fitness(), 1.0);
    }

    #[test]
    fn mined_rules_extract_instance_ids() {
        let events = asgard_run(0, 2);
        let mined = mine_process(
            &events,
            |e| e.field("run").map(str::to_string),
            &MiningConfig::default(),
        )
        .unwrap();
        let m = mined
            .rules
            .match_line("Terminating EC2 instance: i-deadbeef")
            .unwrap();
        assert!(m
            .fields
            .iter()
            .any(|(k, v)| k == "instanceid" && v == "i-deadbeef"));
    }

    #[test]
    fn events_without_trace_id_are_skipped() {
        let mut events = asgard_run(0, 1);
        events.push(LogEvent::new(
            SimTime::from_secs(99),
            "other.log",
            "Starting rolling upgrade task for group other--asg",
        ));
        let mined = mine_process(
            &events,
            |e| e.field("run").map(str::to_string),
            &MiningConfig::default(),
        )
        .unwrap();
        assert_eq!(mined.traces.len(), 1);
    }

    #[test]
    fn no_events_is_an_error() {
        assert!(matches!(
            mine_process(&[], |_| None, &MiningConfig::default()),
            Err(MiningError::NoEvents)
        ));
    }
}
