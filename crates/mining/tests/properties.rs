//! Property-based tests on clustering, masking and discovery.

use pod_mining::{
    cluster_lines, discover_model, mask_line, normalized_token_distance, ClusterConfig, Dfg,
    Template,
};
use pod_process::replay_fitness;
use proptest::prelude::*;

proptest! {
    /// Masking is idempotent: masking a masked line changes nothing.
    #[test]
    fn masking_is_idempotent(line in "[ -~]{0,80}") {
        let once = mask_line(&line);
        let twice = mask_line(&once);
        prop_assert_eq!(once, twice);
    }

    /// Lines differing only in ids and numbers mask identically and land in
    /// one cluster.
    #[test]
    fn id_variants_share_a_cluster(
        ids in prop::collection::vec("[0-9a-f]{8}", 2..8),
        count in 1u32..100,
    ) {
        let lines: Vec<String> = ids
            .iter()
            .map(|id| format!("Terminated instance i-{id} after {count} retries"))
            .collect();
        let first = mask_line(&lines[0]);
        for l in &lines {
            prop_assert_eq!(mask_line(l), first.clone());
        }
        let clusters = cluster_lines(&lines, &ClusterConfig::default());
        prop_assert_eq!(clusters.len(), 1);
        prop_assert_eq!(clusters[0].members.len(), lines.len());
    }

    /// Clustering is a partition: every line lands in exactly one cluster.
    #[test]
    fn clustering_partitions_the_input(lines in prop::collection::vec("[a-z ]{1,40}", 0..30)) {
        let clusters = cluster_lines(&lines, &ClusterConfig::default());
        let mut members: Vec<usize> = clusters.iter().flat_map(|c| c.members.clone()).collect();
        members.sort_unstable();
        prop_assert_eq!(members, (0..lines.len()).collect::<Vec<_>>());
    }

    /// The normalised token distance is a bounded, symmetric pseudo-metric
    /// with identity.
    #[test]
    fn distance_properties(a in "[a-z ]{0,40}", b in "[a-z ]{0,40}") {
        let dab = normalized_token_distance(&a, &b);
        let dba = normalized_token_distance(&b, &a);
        prop_assert!((0.0..=1.0).contains(&dab));
        prop_assert_eq!(dab, dba);
        prop_assert_eq!(normalized_token_distance(&a, &a), 0.0);
    }

    /// A template derived from a cluster matches every line in the cluster.
    #[test]
    fn templates_match_their_own_lines(
        ids in prop::collection::vec("[0-9a-f]{6,8}", 1..6),
    ) {
        let lines: Vec<String> = ids
            .iter()
            .map(|id| format!("Deregistered instance i-{id} from load balancer front"))
            .collect();
        let refs: Vec<&str> = lines.iter().map(String::as_str).collect();
        let template = Template::derive(&refs);
        let re = template.to_regex().unwrap();
        for l in &lines {
            prop_assert!(re.is_match(l), "template {:?} misses {l}", template.to_pattern());
        }
    }

    /// Models discovered from loop traces replay those traces perfectly,
    /// for any mix of loop counts.
    #[test]
    fn discovery_is_self_consistent(loop_counts in prop::collection::vec(1usize..6, 1..6)) {
        let traces: Vec<Vec<String>> = loop_counts
            .iter()
            .map(|n| {
                let mut t = vec!["setup".to_string()];
                for _ in 0..*n {
                    t.push("work".to_string());
                    t.push("verify".to_string());
                }
                t.push("finish".to_string());
                t
            })
            .collect();
        let model = discover_model("p", &Dfg::from_traces(&traces)).unwrap();
        prop_assert_eq!(replay_fitness(&model, &traces).fitness(), 1.0);
        // And — provided the training data exhibited the loop at all — it
        // generalises to a longer loop than any seen.
        if loop_counts.iter().any(|n| *n >= 2) {
            let mut long = vec!["setup".to_string()];
            for _ in 0..10 {
                long.push("work".to_string());
                long.push("verify".to_string());
            }
            long.push("finish".to_string());
            prop_assert_eq!(replay_fitness(&model, &[long]).fitness(), 1.0);
        }
    }

    /// DFG edge frequencies equal the number of adjacent occurrences.
    #[test]
    fn dfg_counts_adjacencies(trace in prop::collection::vec(0u8..4, 2..40)) {
        let named: Vec<String> = trace.iter().map(|a| format!("a{a}")).collect();
        let dfg = Dfg::from_traces(std::slice::from_ref(&named));
        for x in 0..4u8 {
            for y in 0..4u8 {
                let expected = named
                    .windows(2)
                    .filter(|w| w[0] == format!("a{x}") && w[1] == format!("a{y}"))
                    .count();
                prop_assert_eq!(
                    dfg.edge_frequency(&format!("a{x}"), &format!("a{y}")),
                    expected
                );
            }
        }
    }
}
