//! ASCII rendering of metric snapshots for the evaluation report.

use std::fmt::Write as _;

use pod_sim::SimDuration;

use crate::metrics::Snapshot;

fn fmt_value(name: &str, v: u64) -> String {
    // Histograms of microseconds follow the `*_us` naming convention;
    // everything else (depths, attempt counts) is a plain number.
    if name.ends_with("_us") {
        SimDuration::from_micros(v).to_string()
    } else {
        v.to_string()
    }
}

/// Renders a snapshot as an ASCII summary: counters, gauges, then
/// histograms with count/mean/p50/p95/max columns. Histogram values whose
/// name ends in `_us` are rendered as durations; the rest as plain numbers.
pub fn render_summary(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    let counters: Vec<_> = snapshot.counters.iter().filter(|(_, &v)| v > 0).collect();
    if !counters.is_empty() {
        let _ = writeln!(out, "{:<44} {:>12}", "counter", "value");
        for (name, value) in counters {
            let _ = writeln!(out, "{name:<44} {value:>12}");
        }
    }
    let gauges: Vec<_> = snapshot.gauges.iter().filter(|(_, &v)| v != 0).collect();
    if !gauges.is_empty() {
        let _ = writeln!(out, "{:<44} {:>12}", "gauge", "value");
        for (name, value) in gauges {
            let _ = writeln!(out, "{name:<44} {value:>12}");
        }
    }
    let histograms: Vec<_> = snapshot
        .histograms
        .iter()
        .filter(|(_, h)| h.count > 0)
        .collect();
    if !histograms.is_empty() {
        let _ = writeln!(
            out,
            "{:<44} {:>8} {:>10} {:>10} {:>10} {:>10}",
            "histogram", "count", "mean", "p50", "p95", "max"
        );
        for (name, h) in histograms {
            let _ = writeln!(
                out,
                "{:<44} {:>8} {:>10} {:>10} {:>10} {:>10}",
                name,
                h.count,
                fmt_value(name, h.mean().round() as u64),
                fmt_value(name, h.quantile(0.50).unwrap_or(0)),
                fmt_value(name, h.quantile(0.95).unwrap_or(0)),
                fmt_value(name, h.max),
            );
        }
    }
    if out.is_empty() {
        out.push_str("(no metrics recorded)\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    #[test]
    fn summary_lists_active_metrics_only() {
        let reg = Registry::new();
        reg.counter("cloud.api.calls").add(12);
        reg.counter("cloud.api.throttled"); // zero — hidden
        reg.gauge("queue.depth").set(3);
        let h = reg.histogram("cloud.api.latency_us", &[1_000, 100_000]);
        h.record(70_000);
        h.record(90_000);
        let text = render_summary(&reg.snapshot());
        assert!(text.contains("cloud.api.calls"), "got:\n{text}");
        assert!(!text.contains("throttled"), "got:\n{text}");
        assert!(text.contains("queue.depth"), "got:\n{text}");
        assert!(text.contains("cloud.api.latency_us"), "got:\n{text}");
    }

    #[test]
    fn empty_snapshot_renders_placeholder() {
        let text = render_summary(&Registry::new().snapshot());
        assert!(text.contains("no metrics"));
    }
}
