//! Tail-based trace sampling: keep the runs that matter, count the rest.
//!
//! Head-based sampling decides *before* a run whether to record it — and
//! at gateway scale that is exactly backwards, because the runs worth
//! keeping (a detection, an error verdict, a shed or step-limit warning, a
//! tail-latency exemplar) are the rare ones. The [`TailSampler`] decides
//! *after* a run completes, from its [`RunSignals`]:
//!
//! - any **incident-relevant** signal always keeps the run — an operation
//!   that detected something, errored, or was degraded by the gateway is
//!   never sampled away, so every detection retains its full causal chain;
//! - a **tail-latency exemplar** pointing at the run keeps it, so a p99
//!   read from a histogram links to an actual retained trace;
//! - healthy runs are kept deterministically **1-in-N** (same seed → same
//!   keep set), the rest are discarded.
//!
//! Every decision is accounted: `obs.sampler.kept` + `obs.sampler.discarded`
//! always equals the number of decisions, with per-reason breakdowns under
//! `obs.sampler.kept.*` — no more silent drops of incident-relevant
//! telemetry.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::metrics::{Counter, Registry};

/// Sampler configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SamplerConfig {
    /// Keep every `keep_one_in`-th healthy run (1 = keep all healthy runs,
    /// 0 = keep none).
    pub keep_one_in: u64,
}

impl Default for SamplerConfig {
    fn default() -> SamplerConfig {
        SamplerConfig { keep_one_in: 10 }
    }
}

/// What a completed run ended with, as seen by the sampler.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunSignals {
    /// The run/trace id (journal label only; does not affect the verdict).
    pub trace_id: String,
    /// Detections raised during the run.
    pub detections: usize,
    /// Error verdicts (e.g. conformance errors) during the run.
    pub errors: usize,
    /// Degradation warnings attributable to the run: shard shedding,
    /// regex step-limit hits, span/event ring drops.
    pub warnings: usize,
    /// Whether a tail-latency exemplar points at this run.
    pub tail_exemplar: bool,
}

impl RunSignals {
    /// Whether the run carries no keep-worthy signal at all.
    pub fn healthy(&self) -> bool {
        self.detections == 0 && self.errors == 0 && self.warnings == 0 && !self.tail_exemplar
    }

    /// Whether the run is incident-relevant (must never be sampled away).
    pub fn incident_relevant(&self) -> bool {
        self.detections > 0 || self.errors > 0 || self.warnings > 0
    }
}

/// The sampler's decision for one run, in priority order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SampleVerdict {
    /// Kept: the run raised at least one detection.
    KeptDetection,
    /// Kept: the run ended in an error verdict.
    KeptError,
    /// Kept: the run hit a degradation warning (shed, step limit, drops).
    KeptWarning,
    /// Kept: a tail-latency exemplar points at the run.
    KeptTailExemplar,
    /// Kept: deterministic 1-in-N keep of a healthy run.
    KeptHealthy,
    /// Discarded: healthy and not selected by the 1-in-N keep.
    Discarded,
}

impl SampleVerdict {
    /// Whether the run's spans/events are retained.
    pub fn keep(self) -> bool {
        self != SampleVerdict::Discarded
    }

    /// Short label for reports and journals.
    pub fn label(self) -> &'static str {
        match self {
            SampleVerdict::KeptDetection => "detection",
            SampleVerdict::KeptError => "error",
            SampleVerdict::KeptWarning => "warning",
            SampleVerdict::KeptTailExemplar => "tail-exemplar",
            SampleVerdict::KeptHealthy => "healthy-1-in-n",
            SampleVerdict::Discarded => "discarded",
        }
    }
}

/// Decides, per completed run, whether its trace is retained, and accounts
/// every decision in the registry. Cloning shares all state.
#[derive(Debug, Clone)]
pub struct TailSampler {
    keep_one_in: u64,
    healthy_seen: Arc<AtomicU64>,
    kept: Counter,
    discarded: Counter,
    kept_detection: Counter,
    kept_error: Counter,
    kept_warning: Counter,
    kept_tail: Counter,
    kept_healthy: Counter,
}

impl TailSampler {
    /// Creates a sampler accounting its decisions in `registry` under
    /// `obs.sampler.*`.
    pub fn new(registry: &Registry, config: SamplerConfig) -> TailSampler {
        TailSampler {
            keep_one_in: config.keep_one_in,
            healthy_seen: Arc::new(AtomicU64::new(0)),
            kept: registry.counter("obs.sampler.kept"),
            discarded: registry.counter("obs.sampler.discarded"),
            kept_detection: registry.counter("obs.sampler.kept.detection"),
            kept_error: registry.counter("obs.sampler.kept.error"),
            kept_warning: registry.counter("obs.sampler.kept.warning"),
            kept_tail: registry.counter("obs.sampler.kept.tail-exemplar"),
            kept_healthy: registry.counter("obs.sampler.kept.healthy"),
        }
    }

    /// Decides whether the run described by `signals` is retained. Healthy
    /// runs use a deterministic 1-in-N sequence (first healthy run is
    /// always kept, so small batches retain at least one baseline trace).
    pub fn decide(&self, signals: &RunSignals) -> SampleVerdict {
        let verdict = if signals.detections > 0 {
            SampleVerdict::KeptDetection
        } else if signals.errors > 0 {
            SampleVerdict::KeptError
        } else if signals.warnings > 0 {
            SampleVerdict::KeptWarning
        } else if signals.tail_exemplar {
            SampleVerdict::KeptTailExemplar
        } else {
            let seq = self.healthy_seen.fetch_add(1, Ordering::Relaxed);
            if self.keep_one_in > 0 && seq.is_multiple_of(self.keep_one_in) {
                SampleVerdict::KeptHealthy
            } else {
                SampleVerdict::Discarded
            }
        };
        match verdict {
            SampleVerdict::KeptDetection => self.kept_detection.incr(),
            SampleVerdict::KeptError => self.kept_error.incr(),
            SampleVerdict::KeptWarning => self.kept_warning.incr(),
            SampleVerdict::KeptTailExemplar => self.kept_tail.incr(),
            SampleVerdict::KeptHealthy => self.kept_healthy.incr(),
            SampleVerdict::Discarded => {}
        }
        if verdict.keep() {
            self.kept.incr();
        } else {
            self.discarded.incr();
        }
        verdict
    }

    /// Runs kept so far.
    pub fn kept(&self) -> u64 {
        self.kept.get()
    }

    /// Runs discarded so far.
    pub fn discarded(&self) -> u64 {
        self.discarded.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn signals(detections: usize, errors: usize, warnings: usize, tail: bool) -> RunSignals {
        RunSignals {
            trace_id: "op".to_string(),
            detections,
            errors,
            warnings,
            tail_exemplar: tail,
        }
    }

    #[test]
    fn incident_relevant_runs_are_always_kept() {
        let reg = Registry::new();
        let sampler = TailSampler::new(&reg, SamplerConfig { keep_one_in: 0 });
        assert_eq!(
            sampler.decide(&signals(1, 0, 0, false)),
            SampleVerdict::KeptDetection
        );
        assert_eq!(
            sampler.decide(&signals(0, 2, 0, false)),
            SampleVerdict::KeptError
        );
        assert_eq!(
            sampler.decide(&signals(0, 0, 1, false)),
            SampleVerdict::KeptWarning
        );
        assert_eq!(
            sampler.decide(&signals(0, 0, 0, true)),
            SampleVerdict::KeptTailExemplar
        );
        assert_eq!(sampler.kept(), 4);
        assert_eq!(sampler.discarded(), 0);
    }

    #[test]
    fn healthy_runs_keep_one_in_n_deterministically() {
        let reg = Registry::new();
        let sampler = TailSampler::new(&reg, SamplerConfig { keep_one_in: 4 });
        let verdicts: Vec<bool> = (0..8)
            .map(|_| sampler.decide(&RunSignals::default()).keep())
            .collect();
        assert_eq!(
            verdicts,
            vec![true, false, false, false, true, false, false, false]
        );
        assert_eq!(sampler.kept() + sampler.discarded(), 8);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("obs.sampler.kept"), 2);
        assert_eq!(snap.counter("obs.sampler.kept.healthy"), 2);
        assert_eq!(snap.counter("obs.sampler.discarded"), 6);
    }

    #[test]
    fn accounting_breakdown_sums_to_kept() {
        let reg = Registry::new();
        let sampler = TailSampler::new(&reg, SamplerConfig::default());
        for i in 0..50usize {
            sampler.decide(&signals(i % 5, i % 3, i % 2, i % 7 == 0));
        }
        let snap = reg.snapshot();
        let breakdown = snap.sum_counters("obs.sampler.kept.");
        assert_eq!(breakdown, snap.counter("obs.sampler.kept"));
        assert_eq!(
            snap.counter("obs.sampler.kept") + snap.counter("obs.sampler.discarded"),
            50
        );
    }
}
