//! Observability substrate for POD-Diagnosis.
//!
//! The paper's whole evaluation (§V–VI) is measurement: detection
//! precision/recall, the 1.29–10.44 s diagnosis-time distribution, ≈10 ms
//! conformance calls, retry counts in the consistent-API layer. This crate
//! gives the running system the telemetry those numbers come from:
//!
//! - a **metrics registry** ([`Registry`]) of counters, gauges and
//!   fixed-bucket histograms with cheaply cloneable handles and
//!   [`Snapshot`] / diff support;
//! - a **span layer** ([`Tracer`]) recording nested spans (upgrade step →
//!   conformance replay → assertion eval → fault-tree walk → diagnostic
//!   test → cloud API call) with virtual-clock start/end times and
//!   key/value attributes, one trace per run id;
//! - **ASCII sinks**: a metrics summary table ([`render_summary`]), a span
//!   tree ([`Tracer::render_tree`]) and a flame-style aggregation
//!   ([`Tracer::render_flame`]).
//!
//! Timestamps come from the `pod-sim` virtual [`Clock`], so under a fixed
//! seed two runs produce byte-identical traces. The JSON-lines run journal
//! lives in `pod-eval` (it reuses the `pod-log` JSON serializer; this crate
//! sits *below* `pod-log` in the dependency order so the log pipeline
//! itself can be instrumented).
//!
//! # Examples
//!
//! ```
//! use pod_obs::Obs;
//! use pod_sim::{Clock, SimDuration};
//!
//! let clock = Clock::new();
//! let obs = Obs::new(clock.clone());
//! obs.tracer().begin_trace("run-7");
//!
//! let calls = obs.counter("cloud.api.calls");
//! {
//!     let span = obs.span("cloud.api.call");
//!     span.attr("op", "DescribeAsg");
//!     calls.incr();
//!     clock.advance(SimDuration::from_millis(80));
//! }
//!
//! let snap = obs.snapshot();
//! assert_eq!(snap.counter("cloud.api.calls"), 1);
//! assert!(obs.tracer().render_tree().contains("cloud.api.call"));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod metrics;
mod obs;
mod render;
mod span;

pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, Registry, Snapshot, LATENCY_BOUNDS_US,
};
pub use obs::Obs;
pub use render::render_summary;
pub use span::{SpanGuard, SpanRecord, Tracer};
