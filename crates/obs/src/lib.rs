//! Observability substrate for POD-Diagnosis.
//!
//! The paper's whole evaluation (§V–VI) is measurement: detection
//! precision/recall, the 1.29–10.44 s diagnosis-time distribution, ≈10 ms
//! conformance calls, retry counts in the consistent-API layer. This crate
//! gives the running system the telemetry those numbers come from:
//!
//! - a **metrics registry** ([`Registry`]) of counters, gauges and
//!   fixed-bucket histograms with cheaply cloneable handles and
//!   [`Snapshot`] / diff support;
//! - a **span layer** ([`Tracer`]) recording nested spans (upgrade step →
//!   conformance replay → assertion eval → fault-tree walk → diagnostic
//!   test → cloud API call) with virtual-clock start/end times and
//!   key/value attributes, one trace per run id;
//! - a **causal event log** ([`EventLog`]) — ring-buffered instantaneous
//!   events with explicit parent links and span/trace correlation, emitted
//!   at every pipeline hand-off so each incident carries its evidence
//!   chain;
//! - **exporters**: Chrome trace-event JSON ([`chrome_trace`],
//!   Perfetto-loadable) and an OTLP-style JSON document ([`otlp_json`]) for
//!   spans+events;
//! - an **incident timeline explainer** ([`incidents`],
//!   [`render_timelines`]) reconstructing, per detection, the ordered
//!   causal chain from the triggering log line to the reported root cause
//!   with per-hop latency;
//! - **ASCII sinks**: a metrics summary table ([`render_summary`]), a span
//!   tree ([`Tracer::render_tree`]) and a flame-style aggregation
//!   ([`Tracer::render_flame`]).
//!
//! Timestamps come from the `pod-sim` virtual [`Clock`], so under a fixed
//! seed two runs produce byte-identical traces. The JSON-lines run journal
//! lives in `pod-eval` (it reuses the `pod-log` JSON serializer; this crate
//! sits *below* `pod-log` in the dependency order so the log pipeline
//! itself can be instrumented).
//!
//! # Examples
//!
//! ```
//! use pod_obs::Obs;
//! use pod_sim::{Clock, SimDuration};
//!
//! let clock = Clock::new();
//! let obs = Obs::new(clock.clone());
//! obs.tracer().begin_trace("run-7");
//!
//! let calls = obs.counter("cloud.api.calls");
//! {
//!     let span = obs.span("cloud.api.call");
//!     span.attr("op", "DescribeAsg");
//!     calls.incr();
//!     clock.advance(SimDuration::from_millis(80));
//! }
//!
//! let snap = obs.snapshot();
//! assert_eq!(snap.counter("cloud.api.calls"), 1);
//! assert!(obs.tracer().render_tree().contains("cloud.api.call"));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod event;
mod export;
mod flight;
mod hist2;
mod metrics;
mod obs;
mod render;
mod sampler;
mod span;
mod timeline;

pub use event::{CauseScope, Emitted, EventId, EventLog, EventRecord, Parent};
pub use export::{chrome_trace, otlp_json};
pub use flight::{
    render_dashboard, FlightConfig, FlightDump, FlightFrame, FlightRecorder, IncidentMark,
};
pub use hist2::{log_bounds, Exemplar, LogHistogram, EXEMPLAR_CAP};
pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, Registry, ShardCell, ShardedCounter, Snapshot,
    LATENCY_BOUNDS_US,
};
pub use obs::{Obs, TelemetryMode};
pub use render::render_summary;
pub use sampler::{RunSignals, SampleVerdict, SamplerConfig, TailSampler};
pub use span::{SpanGuard, SpanRecord, Tracer};
pub use timeline::{incident_count, incidents, render_timeline, render_timelines, IncidentChain};
