//! The metrics registry: counters (plain and sharded), gauges, fixed-bucket
//! and log-scale histograms, and point-in-time snapshots with diff/merge
//! support.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::hist2::{Exemplar, LogHistogram, EXEMPLAR_CAP};

/// Default histogram bounds for virtual-time latencies, in microseconds:
/// roughly exponential from 100 µs to 60 s. The paper's interesting
/// latencies (≈10 ms conformance calls, 70–90 ms API calls, 1.29–10.44 s
/// diagnoses) all land in distinct buckets.
pub const LATENCY_BOUNDS_US: &[u64] = &[
    100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000,
    1_000_000, 2_500_000, 5_000_000, 10_000_000, 30_000_000, 60_000_000,
];

/// A monotonically increasing counter. Cloning shares the underlying cell,
/// so handles can be cached on hot paths and bumped lock-free.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// One cache line per shard so concurrent bumps from different shards
/// never contend on the same line (the local crossbeam shim has no
/// `CachePadded`).
#[repr(align(64))]
#[derive(Debug, Default)]
struct PaddedCell(AtomicU64);

/// A monotonically increasing counter split across per-shard cache-padded
/// cells. Each gateway shard bumps its own [`ShardCell`] lock-free with no
/// false sharing; [`Registry::snapshot`] folds the cells into one total
/// under the counter's name, so renderers, diff and merge see an ordinary
/// counter. Cloning shares the cells.
#[derive(Debug, Clone)]
pub struct ShardedCounter {
    cells: Arc<Vec<PaddedCell>>,
}

impl ShardedCounter {
    fn new(shards: usize) -> ShardedCounter {
        ShardedCounter {
            cells: Arc::new((0..shards.max(1)).map(|_| PaddedCell::default()).collect()),
        }
    }

    /// The number of cells.
    pub fn shards(&self) -> usize {
        self.cells.len()
    }

    /// The cheap per-shard handle; `shard` wraps modulo the cell count.
    pub fn cell(&self, shard: usize) -> ShardCell {
        ShardCell {
            cells: Arc::clone(&self.cells),
            idx: shard % self.cells.len(),
        }
    }

    /// Sum over all cells.
    pub fn total(&self) -> u64 {
        self.cells.iter().map(|c| c.0.load(Ordering::Relaxed)).sum()
    }
}

/// A handle bound to one cell of a [`ShardedCounter`].
#[derive(Debug, Clone)]
pub struct ShardCell {
    cells: Arc<Vec<PaddedCell>>,
    idx: usize,
}

impl ShardCell {
    /// Adds one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.cells[self.idx].0.fetch_add(n, Ordering::Relaxed);
    }
}

/// A signed instantaneous value (queue depths, open spans, ...).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramInner {
    /// Inclusive upper bounds of the first `bounds.len()` buckets; one
    /// implicit overflow bucket follows.
    bounds: Vec<u64>,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

/// A fixed-bucket histogram of `u64` observations (microseconds, depths,
/// attempt counts...). Cloning shares the cells.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramInner>);

impl Histogram {
    fn new(bounds: &[u64]) -> Histogram {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds must ascend");
        Histogram(Arc::new(HistogramInner {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }))
    }

    /// Records one observation.
    pub fn record(&self, value: u64) {
        let h = &self.0;
        let idx = h.bounds.partition_point(|&b| b < value);
        h.buckets[idx].fetch_add(1, Ordering::Relaxed);
        h.count.fetch_add(1, Ordering::Relaxed);
        h.sum.fetch_add(value, Ordering::Relaxed);
        h.min.fetch_min(value, Ordering::Relaxed);
        h.max.fetch_max(value, Ordering::Relaxed);
    }

    /// The number of recorded observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    fn snapshot(&self) -> HistogramSnapshot {
        let h = &self.0;
        HistogramSnapshot {
            bounds: h.bounds.clone(),
            buckets: h
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: h.count.load(Ordering::Relaxed),
            sum: h.sum.load(Ordering::Relaxed),
            min: h.min.load(Ordering::Relaxed),
            max: h.max.load(Ordering::Relaxed),
        }
    }
}

/// Immutable copy of one histogram's state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Inclusive upper bounds of the leading buckets.
    pub bounds: Vec<u64>,
    /// Per-bucket observation counts (`bounds.len() + 1` entries; the last
    /// is the overflow bucket).
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Smallest observed value (`u64::MAX` when empty).
    pub min: u64,
    /// Largest observed value (0 when empty).
    pub max: u64,
}

impl HistogramSnapshot {
    /// Mean observed value; 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimates the `q`-quantile (`0.0 ..= 1.0`) from the buckets.
    ///
    /// **Semantics:** the estimate is the *inclusive upper bound* of the
    /// bucket containing the target rank, clamped to the observed
    /// `[min, max]` — so it is monotone in `q`, never under-reports, and is
    /// always bounded by real observations. `q = 0` returns the exact
    /// `min`, `q = 1` the exact `max`.
    ///
    /// **Error bound:** the estimate exceeds the true quantile by at most
    /// one bucket's width. For the log-scale layout used by
    /// [`LogHistogram`](crate::LogHistogram) (8 sub-buckets per octave)
    /// that is a relative error ≤ 1/8 = 12.5%; for fixed bounds such as
    /// [`LATENCY_BOUNDS_US`] it is the gap to the next configured bound
    /// (values past the last bound fall in the overflow bucket, where the
    /// estimate is the observed `max`). Returns `None` when the histogram
    /// is empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        if q <= 0.0 {
            return Some(self.min);
        }
        if q >= 1.0 {
            return Some(self.max);
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        let mut estimate = self.max;
        for (i, &n) in self.buckets.iter().enumerate() {
            cumulative += n;
            if cumulative >= target {
                estimate = if i < self.bounds.len() {
                    self.bounds[i]
                } else {
                    self.max
                };
                break;
            }
        }
        Some(estimate.clamp(self.min, self.max))
    }

    /// The counts-since `earlier`: buckets, count and sum subtract
    /// (saturating); min/max are kept from `self` since decomposing
    /// extremes is not possible.
    fn diff(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let buckets = self
            .buckets
            .iter()
            .zip(earlier.buckets.iter().chain(std::iter::repeat(&0)))
            .map(|(now, then)| now.saturating_sub(*then))
            .collect();
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            buckets,
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            min: self.min,
            max: self.max,
        }
    }

    /// Merges another snapshot into this one (campaign aggregation across
    /// runs).
    ///
    /// Identical bounds merge bucket-by-bucket. Mismatched bounds **widen**:
    /// both sides are re-bucketed onto the union of the two bounds vectors,
    /// which is lossless at bucket granularity (every source bucket's upper
    /// bound appears in the union, so no count ever moves to a different
    /// bound than it was recorded under). Release builds therefore can no
    /// longer silently add buckets of incompatible layouts positionally.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if self.bounds != other.bounds {
            let mut union = Vec::with_capacity(self.bounds.len().max(other.bounds.len()));
            union.extend_from_slice(&self.bounds);
            union.extend_from_slice(&other.bounds);
            union.sort_unstable();
            union.dedup();
            *self = self.rebucket(&union);
            let other = other.rebucket(&union);
            debug_assert_eq!(self.bounds, other.bounds);
            self.merge(&other);
            return;
        }
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Re-expresses this snapshot over `bounds`, a superset of
    /// `self.bounds`: each bucket's count moves to the bucket whose upper
    /// bound equals its own; the overflow bucket stays overflow.
    fn rebucket(&self, bounds: &[u64]) -> HistogramSnapshot {
        let mut buckets = vec![0u64; bounds.len() + 1];
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let slot = match self.bounds.get(i) {
                Some(&bound) => bounds.partition_point(|&b| b < bound),
                None => bounds.len(), // overflow stays overflow
            };
            buckets[slot] += n;
        }
        HistogramSnapshot {
            bounds: bounds.to_vec(),
            buckets,
            count: self.count,
            sum: self.sum,
            min: self.min,
            max: self.max,
        }
    }
}

/// Point-in-time copy of every metric in a [`Registry`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// Counter values by name (sharded counters are folded into their
    /// per-name totals here).
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram states by name (log-scale histograms export over their
    /// shared log-scale bounds).
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Tail exemplars by histogram name, largest value first.
    pub exemplars: BTreeMap<String, Vec<Exemplar>>,
}

impl Snapshot {
    /// The named counter's value (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The named histogram, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Counters whose names start with `prefix`, in name order.
    ///
    /// The gateway uses this to roll per-shard counters
    /// (`gateway.shard.3.shed` …) into reports without enumerating shard
    /// ids by hand.
    pub fn counters_with_prefix(&self, prefix: &str) -> Vec<(&str, u64)> {
        self.counters
            .range(prefix.to_string()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, v)| (k.as_str(), *v))
            .collect()
    }

    /// Sum of all counters whose names start with `prefix`.
    pub fn sum_counters(&self, prefix: &str) -> u64 {
        self.counters_with_prefix(prefix)
            .iter()
            .map(|(_, v)| v)
            .sum()
    }

    /// The named histogram's tail exemplars (empty when absent).
    pub fn exemplars(&self, name: &str) -> &[Exemplar] {
        self.exemplars.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.values().all(|&v| v == 0)
            && self.gauges.is_empty()
            && self.histograms.values().all(|h| h.count == 0)
            && self.exemplars.is_empty()
    }

    /// The change from `earlier` to `self`: counters and histogram
    /// tallies subtract (saturating); gauges keep their current value.
    pub fn diff(&self, earlier: &Snapshot) -> Snapshot {
        let counters = self
            .counters
            .iter()
            .map(|(k, &v)| (k.clone(), v.saturating_sub(earlier.counter(k))))
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(k, h)| match earlier.histograms.get(k) {
                Some(e) => (k.clone(), h.diff(e)),
                None => (k.clone(), h.clone()),
            })
            .collect();
        Snapshot {
            counters,
            gauges: self.gauges.clone(),
            histograms,
            exemplars: self.exemplars.clone(),
        }
    }

    /// Accumulates `other` into this snapshot (campaign aggregation):
    /// counters and histograms add (mismatched histogram bounds widen onto
    /// their union instead of being silently replaced); gauges keep the
    /// latest value; exemplar reservoirs combine and keep the largest
    /// values.
    pub fn merge(&mut self, other: &Snapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        for (k, h) in &other.histograms {
            match self.histograms.get_mut(k) {
                Some(mine) => mine.merge(h),
                None => {
                    self.histograms.insert(k.clone(), h.clone());
                }
            }
        }
        for (k, tail) in &other.exemplars {
            let mine = self.exemplars.entry(k.clone()).or_default();
            mine.extend(tail.iter().cloned());
            mine.sort_by(|a, b| b.value.cmp(&a.value).then(a.at.cmp(&b.at)));
            mine.dedup();
            mine.truncate(EXEMPLAR_CAP);
        }
    }
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: BTreeMap<String, Counter>,
    sharded: BTreeMap<String, ShardedCounter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
    log_histograms: BTreeMap<String, LogHistogram>,
}

/// The shared metrics registry. Cloning shares the same metric set;
/// handles returned from the accessors stay live after the registry is
/// dropped.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    inner: Arc<Mutex<RegistryInner>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The counter registered under `name`, created on first use.
    pub fn counter(&self, name: &str) -> Counter {
        let mut inner = self.inner.lock();
        inner.counters.entry(name.to_string()).or_default().clone()
    }

    /// The gauge registered under `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut inner = self.inner.lock();
        inner.gauges.entry(name.to_string()).or_default().clone()
    }

    /// The sharded counter registered under `name`, created on first use
    /// with `shards` cells. Later callers get the existing counter
    /// regardless of the shard count they pass. Snapshots fold the cells
    /// into one total under `name` (added to any plain counter of the same
    /// name).
    pub fn sharded_counter(&self, name: &str, shards: usize) -> ShardedCounter {
        let mut inner = self.inner.lock();
        inner
            .sharded
            .entry(name.to_string())
            .or_insert_with(|| ShardedCounter::new(shards))
            .clone()
    }

    /// The histogram registered under `name`, created on first use with
    /// `bounds` (ascending inclusive upper bounds). Later callers get the
    /// existing histogram regardless of the bounds they pass.
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Histogram {
        let mut inner = self.inner.lock();
        inner
            .histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(bounds))
            .clone()
    }

    /// The log-scale histogram registered under `name`, created on first
    /// use. Snapshots export it as an ordinary [`HistogramSnapshot`] over
    /// the shared log-scale bounds, plus its tail exemplars under
    /// [`Snapshot::exemplars`]. On a name collision with a fixed-bucket
    /// histogram, the log-scale one wins in the snapshot.
    pub fn log_histogram(&self, name: &str) -> LogHistogram {
        let mut inner = self.inner.lock();
        inner
            .log_histograms
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Copies every metric's current value.
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.inner.lock();
        let mut counters: BTreeMap<String, u64> = inner
            .counters
            .iter()
            .map(|(k, c)| (k.clone(), c.get()))
            .collect();
        for (k, s) in &inner.sharded {
            *counters.entry(k.clone()).or_insert(0) += s.total();
        }
        let mut histograms: BTreeMap<String, HistogramSnapshot> = inner
            .histograms
            .iter()
            .map(|(k, h)| (k.clone(), h.snapshot()))
            .collect();
        let mut exemplars = BTreeMap::new();
        for (k, h) in &inner.log_histograms {
            histograms.insert(k.clone(), h.snapshot());
            let tail = h.exemplars();
            if !tail.is_empty() {
                exemplars.insert(k.clone(), tail);
            }
        }
        Snapshot {
            counters,
            gauges: inner
                .gauges
                .iter()
                .map(|(k, g)| (k.clone(), g.get()))
                .collect(),
            histograms,
            exemplars,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let reg = Registry::new();
        let c = reg.counter("x");
        c.incr();
        c.add(4);
        assert_eq!(reg.counter("x").get(), 5, "handles share the cell");
        let g = reg.gauge("depth");
        g.set(3);
        g.add(-1);
        assert_eq!(g.get(), 2);
    }

    #[test]
    fn prefix_queries_select_and_sum() {
        let reg = Registry::new();
        reg.counter("gateway.shard.0.shed").add(2);
        reg.counter("gateway.shard.1.shed").add(3);
        reg.counter("gateway.shed.oldest").add(7);
        reg.counter("other").incr();
        let snap = reg.snapshot();
        let shards = snap.counters_with_prefix("gateway.shard.");
        assert_eq!(
            shards,
            vec![("gateway.shard.0.shed", 2), ("gateway.shard.1.shed", 3)]
        );
        assert_eq!(snap.sum_counters("gateway.shard."), 5);
        assert_eq!(snap.sum_counters("gateway."), 12);
        assert_eq!(snap.sum_counters("missing."), 0);
    }

    #[test]
    fn snapshot_diff_subtracts_counters_and_histograms() {
        let reg = Registry::new();
        let c = reg.counter("calls");
        let h = reg.histogram("lat", &[10, 100]);
        c.add(2);
        h.record(5);
        let before = reg.snapshot();
        c.add(3);
        h.record(50);
        h.record(500);
        let delta = reg.snapshot().diff(&before);
        assert_eq!(delta.counter("calls"), 3);
        let hs = delta.histogram("lat").unwrap();
        assert_eq!(hs.count, 2);
        assert_eq!(hs.buckets, vec![0, 1, 1]);
        assert_eq!(hs.sum, 550);
    }

    #[test]
    fn snapshot_merge_accumulates() {
        let a_reg = Registry::new();
        a_reg.counter("calls").add(2);
        a_reg.histogram("lat", &[10]).record(4);
        let b_reg = Registry::new();
        b_reg.counter("calls").add(5);
        b_reg.histogram("lat", &[10]).record(40);
        let mut total = a_reg.snapshot();
        total.merge(&b_reg.snapshot());
        assert_eq!(total.counter("calls"), 7);
        let h = total.histogram("lat").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!((h.min, h.max), (4, 40));
    }

    #[test]
    fn quantiles_track_bucket_bounds() {
        let reg = Registry::new();
        let h = reg.histogram("lat", &[10, 100, 1000]);
        for v in [1, 2, 3, 50, 60, 70, 800, 900, 5000, 6000] {
            h.record(v);
        }
        let s = reg.snapshot();
        let hs = s.histogram("lat").unwrap();
        assert_eq!(hs.quantile(0.0), Some(1), "q=0 clamps to min");
        assert_eq!(hs.quantile(1.0), Some(6000), "q=1 clamps to max");
        assert_eq!(hs.quantile(0.25), Some(10));
        assert_eq!(hs.quantile(0.5), Some(100));
        assert!(hs.quantile(0.9).unwrap() >= hs.quantile(0.5).unwrap());
        assert!(reg.snapshot().histogram("missing").is_none());
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let reg = Registry::new();
        reg.histogram("lat", &[10]);
        assert_eq!(reg.snapshot().histogram("lat").unwrap().quantile(0.5), None);
    }

    #[test]
    fn quantiles_are_pinned_on_known_distributions() {
        // Uniform 1..=100 over decade-wide fixed buckets: every estimate is
        // the upper bound of the rank's bucket, so the error is at most one
        // bucket width (10 here).
        let reg = Registry::new();
        let h = reg.histogram("fixed", &[10, 20, 30, 40, 50, 60, 70, 80, 90, 100]);
        for v in 1..=100 {
            h.record(v);
        }
        let snap = reg.snapshot();
        let hs = snap.histogram("fixed").unwrap();
        assert_eq!(hs.quantile(0.50), Some(50));
        assert_eq!(hs.quantile(0.95), Some(100));
        assert_eq!(hs.quantile(0.99), Some(100));

        // Uniform 1..=1000 over the log-scale layout: estimates stay within
        // the documented 12.5% relative error of the true quantile.
        let lh = reg.log_histogram("log");
        for v in 1..=1000 {
            lh.record(v);
        }
        let snap = reg.snapshot();
        let ls = snap.histogram("log").unwrap();
        assert_eq!(ls.quantile(0.50), Some(511));
        assert_eq!(ls.quantile(0.95), Some(959));
        assert_eq!(ls.quantile(0.99), Some(1000), "clamped to observed max");
        for (q, truth) in [(0.50, 500u64), (0.95, 950), (0.99, 990)] {
            let est = ls.quantile(q).unwrap();
            assert!(est >= truth, "upper-bound semantics");
            assert!(
                (est - truth) as f64 / truth as f64 <= 0.125,
                "q={q}: est {est} vs true {truth}"
            );
        }
    }

    #[test]
    fn merge_widens_mismatched_bounds_instead_of_replacing() {
        let a_reg = Registry::new();
        let ah = a_reg.histogram("lat", &[10, 100]);
        ah.record(5);
        ah.record(90);
        let b_reg = Registry::new();
        let bh = b_reg.histogram("lat", &[50, 1000]);
        bh.record(40);
        bh.record(900);
        bh.record(5000); // overflow on b's layout
        let mut total = a_reg.snapshot();
        total.merge(&b_reg.snapshot());
        let h = total.histogram("lat").unwrap();
        assert_eq!(h.bounds, vec![10, 50, 100, 1000], "union of both layouts");
        assert_eq!(h.count, 5, "nothing replaced, everything merged");
        assert_eq!(h.sum, 5 + 90 + 40 + 900 + 5000);
        // Counts stay under the bound they were recorded under: a's ≤10
        // bucket maps to the union's ≤10, a's ≤100 to ≤100, b's ≤50 to ≤50,
        // b's ≤1000 to ≤1000, b's overflow to overflow.
        assert_eq!(h.buckets, vec![1, 1, 1, 1, 1]);
        assert_eq!((h.min, h.max), (5, 5000));
    }

    #[test]
    fn sharded_counter_folds_into_the_snapshot_total() {
        let reg = Registry::new();
        let sc = reg.sharded_counter("gateway.lines.processed", 4);
        assert_eq!(sc.shards(), 4);
        let cells: Vec<_> = (0..4).map(|i| sc.cell(i)).collect();
        let handles: Vec<_> = cells
            .into_iter()
            .map(|cell| {
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        cell.incr();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        sc.cell(7).add(2); // wraps to cell 3
        assert_eq!(sc.total(), 40_002);
        assert_eq!(reg.snapshot().counter("gateway.lines.processed"), 40_002);
        // A plain counter of the same name adds to the folded total.
        reg.counter("gateway.lines.processed").add(8);
        assert_eq!(reg.snapshot().counter("gateway.lines.processed"), 40_010);
        // Re-registration shares cells regardless of the shard count asked.
        let again = reg.sharded_counter("gateway.lines.processed", 16);
        assert_eq!(again.shards(), 4);
    }

    #[test]
    fn snapshot_carries_log_histogram_exemplars() {
        use crate::hist2::Exemplar;
        use pod_sim::SimTime;
        let reg = Registry::new();
        let h = reg.log_histogram("gateway.queue_wait_us");
        h.record(10);
        h.record_with(9_000, || Exemplar {
            value: 9_000,
            at: SimTime::from_micros(42),
            event: Some(7),
            labels: vec![("op".into(), "i-0042".into())],
        });
        let snap = reg.snapshot();
        let tail = snap.exemplars("gateway.queue_wait_us");
        assert_eq!(tail.len(), 1);
        assert_eq!(tail[0].value, 9_000);
        assert_eq!(snap.histogram("gateway.queue_wait_us").unwrap().count, 2);
        // merge keeps the largest exemplars from both sides.
        let mut total = snap.clone();
        total.merge(&snap);
        assert_eq!(total.exemplars("gateway.queue_wait_us").len(), 1, "deduped");
    }

    #[test]
    fn concurrent_counter_hammering_loses_nothing() {
        let reg = Registry::new();
        let threads = 8;
        let per_thread = 10_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let c = reg.counter("hammered");
                std::thread::spawn(move || {
                    for _ in 0..per_thread {
                        c.incr();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(reg.counter("hammered").get(), threads * per_thread);
    }

    #[test]
    fn concurrent_histogram_recording_is_consistent() {
        let reg = Registry::new();
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let h = reg.histogram("lat", &[100, 1000]);
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        h.record(t * 250 + i % 7);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let s = reg.snapshot();
        let hs = s.histogram("lat").unwrap();
        assert_eq!(hs.count, 4000);
        assert_eq!(hs.buckets.iter().sum::<u64>(), 4000);
    }
}
