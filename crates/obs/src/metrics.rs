//! The metrics registry: counters, gauges, fixed-bucket histograms, and
//! point-in-time snapshots with diff/merge support.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

/// Default histogram bounds for virtual-time latencies, in microseconds:
/// roughly exponential from 100 µs to 60 s. The paper's interesting
/// latencies (≈10 ms conformance calls, 70–90 ms API calls, 1.29–10.44 s
/// diagnoses) all land in distinct buckets.
pub const LATENCY_BOUNDS_US: &[u64] = &[
    100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000,
    1_000_000, 2_500_000, 5_000_000, 10_000_000, 30_000_000, 60_000_000,
];

/// A monotonically increasing counter. Cloning shares the underlying cell,
/// so handles can be cached on hot paths and bumped lock-free.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous value (queue depths, open spans, ...).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramInner {
    /// Inclusive upper bounds of the first `bounds.len()` buckets; one
    /// implicit overflow bucket follows.
    bounds: Vec<u64>,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

/// A fixed-bucket histogram of `u64` observations (microseconds, depths,
/// attempt counts...). Cloning shares the cells.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramInner>);

impl Histogram {
    fn new(bounds: &[u64]) -> Histogram {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds must ascend");
        Histogram(Arc::new(HistogramInner {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }))
    }

    /// Records one observation.
    pub fn record(&self, value: u64) {
        let h = &self.0;
        let idx = h.bounds.partition_point(|&b| b < value);
        h.buckets[idx].fetch_add(1, Ordering::Relaxed);
        h.count.fetch_add(1, Ordering::Relaxed);
        h.sum.fetch_add(value, Ordering::Relaxed);
        h.min.fetch_min(value, Ordering::Relaxed);
        h.max.fetch_max(value, Ordering::Relaxed);
    }

    /// The number of recorded observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    fn snapshot(&self) -> HistogramSnapshot {
        let h = &self.0;
        HistogramSnapshot {
            bounds: h.bounds.clone(),
            buckets: h
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: h.count.load(Ordering::Relaxed),
            sum: h.sum.load(Ordering::Relaxed),
            min: h.min.load(Ordering::Relaxed),
            max: h.max.load(Ordering::Relaxed),
        }
    }
}

/// Immutable copy of one histogram's state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Inclusive upper bounds of the leading buckets.
    pub bounds: Vec<u64>,
    /// Per-bucket observation counts (`bounds.len() + 1` entries; the last
    /// is the overflow bucket).
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Smallest observed value (`u64::MAX` when empty).
    pub min: u64,
    /// Largest observed value (0 when empty).
    pub max: u64,
}

impl HistogramSnapshot {
    /// Mean observed value; 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimates the `q`-quantile (`0.0 ..= 1.0`) from the buckets.
    ///
    /// The estimate is the upper bound of the bucket containing the target
    /// rank, clamped to the observed `[min, max]` — so it is monotone in
    /// `q` and always bounded by real observations. Returns `None` when
    /// the histogram is empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        if q <= 0.0 {
            return Some(self.min);
        }
        if q >= 1.0 {
            return Some(self.max);
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        let mut estimate = self.max;
        for (i, &n) in self.buckets.iter().enumerate() {
            cumulative += n;
            if cumulative >= target {
                estimate = if i < self.bounds.len() {
                    self.bounds[i]
                } else {
                    self.max
                };
                break;
            }
        }
        Some(estimate.clamp(self.min, self.max))
    }

    /// The counts-since `earlier`: buckets, count and sum subtract
    /// (saturating); min/max are kept from `self` since decomposing
    /// extremes is not possible.
    fn diff(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let buckets = self
            .buckets
            .iter()
            .zip(earlier.buckets.iter().chain(std::iter::repeat(&0)))
            .map(|(now, then)| now.saturating_sub(*then))
            .collect();
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            buckets,
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            min: self.min,
            max: self.max,
        }
    }

    /// Merges another snapshot with identical bounds into this one
    /// (campaign aggregation across runs).
    fn merge(&mut self, other: &HistogramSnapshot) {
        debug_assert_eq!(self.bounds, other.bounds, "merging mismatched histograms");
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Point-in-time copy of every metric in a [`Registry`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram states by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl Snapshot {
    /// The named counter's value (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The named histogram, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Counters whose names start with `prefix`, in name order.
    ///
    /// The gateway uses this to roll per-shard counters
    /// (`gateway.shard.3.shed` …) into reports without enumerating shard
    /// ids by hand.
    pub fn counters_with_prefix(&self, prefix: &str) -> Vec<(&str, u64)> {
        self.counters
            .range(prefix.to_string()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, v)| (k.as_str(), *v))
            .collect()
    }

    /// Sum of all counters whose names start with `prefix`.
    pub fn sum_counters(&self, prefix: &str) -> u64 {
        self.counters_with_prefix(prefix)
            .iter()
            .map(|(_, v)| v)
            .sum()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.values().all(|&v| v == 0)
            && self.gauges.is_empty()
            && self.histograms.values().all(|h| h.count == 0)
    }

    /// The change from `earlier` to `self`: counters and histogram
    /// tallies subtract (saturating); gauges keep their current value.
    pub fn diff(&self, earlier: &Snapshot) -> Snapshot {
        let counters = self
            .counters
            .iter()
            .map(|(k, &v)| (k.clone(), v.saturating_sub(earlier.counter(k))))
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(k, h)| match earlier.histograms.get(k) {
                Some(e) => (k.clone(), h.diff(e)),
                None => (k.clone(), h.clone()),
            })
            .collect();
        Snapshot {
            counters,
            gauges: self.gauges.clone(),
            histograms,
        }
    }

    /// Accumulates `other` into this snapshot (campaign aggregation):
    /// counters and histograms add; gauges keep the latest value.
    pub fn merge(&mut self, other: &Snapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        for (k, h) in &other.histograms {
            match self.histograms.get_mut(k) {
                Some(mine) if mine.bounds == h.bounds => mine.merge(h),
                _ => {
                    self.histograms.insert(k.clone(), h.clone());
                }
            }
        }
    }
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
}

/// The shared metrics registry. Cloning shares the same metric set;
/// handles returned from the accessors stay live after the registry is
/// dropped.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    inner: Arc<Mutex<RegistryInner>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The counter registered under `name`, created on first use.
    pub fn counter(&self, name: &str) -> Counter {
        let mut inner = self.inner.lock();
        inner.counters.entry(name.to_string()).or_default().clone()
    }

    /// The gauge registered under `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut inner = self.inner.lock();
        inner.gauges.entry(name.to_string()).or_default().clone()
    }

    /// The histogram registered under `name`, created on first use with
    /// `bounds` (ascending inclusive upper bounds). Later callers get the
    /// existing histogram regardless of the bounds they pass.
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Histogram {
        let mut inner = self.inner.lock();
        inner
            .histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(bounds))
            .clone()
    }

    /// Copies every metric's current value.
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.inner.lock();
        Snapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, c)| (k.clone(), c.get()))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(k, g)| (k.clone(), g.get()))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, h)| (k.clone(), h.snapshot()))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let reg = Registry::new();
        let c = reg.counter("x");
        c.incr();
        c.add(4);
        assert_eq!(reg.counter("x").get(), 5, "handles share the cell");
        let g = reg.gauge("depth");
        g.set(3);
        g.add(-1);
        assert_eq!(g.get(), 2);
    }

    #[test]
    fn prefix_queries_select_and_sum() {
        let reg = Registry::new();
        reg.counter("gateway.shard.0.shed").add(2);
        reg.counter("gateway.shard.1.shed").add(3);
        reg.counter("gateway.shed.oldest").add(7);
        reg.counter("other").incr();
        let snap = reg.snapshot();
        let shards = snap.counters_with_prefix("gateway.shard.");
        assert_eq!(
            shards,
            vec![("gateway.shard.0.shed", 2), ("gateway.shard.1.shed", 3)]
        );
        assert_eq!(snap.sum_counters("gateway.shard."), 5);
        assert_eq!(snap.sum_counters("gateway."), 12);
        assert_eq!(snap.sum_counters("missing."), 0);
    }

    #[test]
    fn snapshot_diff_subtracts_counters_and_histograms() {
        let reg = Registry::new();
        let c = reg.counter("calls");
        let h = reg.histogram("lat", &[10, 100]);
        c.add(2);
        h.record(5);
        let before = reg.snapshot();
        c.add(3);
        h.record(50);
        h.record(500);
        let delta = reg.snapshot().diff(&before);
        assert_eq!(delta.counter("calls"), 3);
        let hs = delta.histogram("lat").unwrap();
        assert_eq!(hs.count, 2);
        assert_eq!(hs.buckets, vec![0, 1, 1]);
        assert_eq!(hs.sum, 550);
    }

    #[test]
    fn snapshot_merge_accumulates() {
        let a_reg = Registry::new();
        a_reg.counter("calls").add(2);
        a_reg.histogram("lat", &[10]).record(4);
        let b_reg = Registry::new();
        b_reg.counter("calls").add(5);
        b_reg.histogram("lat", &[10]).record(40);
        let mut total = a_reg.snapshot();
        total.merge(&b_reg.snapshot());
        assert_eq!(total.counter("calls"), 7);
        let h = total.histogram("lat").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!((h.min, h.max), (4, 40));
    }

    #[test]
    fn quantiles_track_bucket_bounds() {
        let reg = Registry::new();
        let h = reg.histogram("lat", &[10, 100, 1000]);
        for v in [1, 2, 3, 50, 60, 70, 800, 900, 5000, 6000] {
            h.record(v);
        }
        let s = reg.snapshot();
        let hs = s.histogram("lat").unwrap();
        assert_eq!(hs.quantile(0.0), Some(1), "q=0 clamps to min");
        assert_eq!(hs.quantile(1.0), Some(6000), "q=1 clamps to max");
        assert_eq!(hs.quantile(0.25), Some(10));
        assert_eq!(hs.quantile(0.5), Some(100));
        assert!(hs.quantile(0.9).unwrap() >= hs.quantile(0.5).unwrap());
        assert!(reg.snapshot().histogram("missing").is_none());
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let reg = Registry::new();
        reg.histogram("lat", &[10]);
        assert_eq!(reg.snapshot().histogram("lat").unwrap().quantile(0.5), None);
    }

    #[test]
    fn concurrent_counter_hammering_loses_nothing() {
        let reg = Registry::new();
        let threads = 8;
        let per_thread = 10_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let c = reg.counter("hammered");
                std::thread::spawn(move || {
                    for _ in 0..per_thread {
                        c.incr();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(reg.counter("hammered").get(), threads * per_thread);
    }

    #[test]
    fn concurrent_histogram_recording_is_consistent() {
        let reg = Registry::new();
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let h = reg.histogram("lat", &[100, 1000]);
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        h.record(t * 250 + i % 7);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let s = reg.snapshot();
        let hs = s.histogram("lat").unwrap();
        assert_eq!(hs.count, 4000);
        assert_eq!(hs.buckets.iter().sum::<u64>(), 4000);
    }
}
