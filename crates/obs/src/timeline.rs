//! The incident timeline explainer: reconstructs, per detected error, the
//! ordered causal chain from the triggering log line to the reported root
//! cause, with per-hop latency, and renders it as an ASCII timeline.
//!
//! The input is the flat [`EventRecord`] list of one trace. Every event of
//! kind `detection` seeds one [`IncidentChain`]: its ancestor chain (parent
//! links walked to the root — the evidence *leading to* the detection) plus
//! every descendant (the dispatched diagnosis, fault-tree tests, verdict and
//! root causes *explaining* it).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

use pod_sim::SimDuration;

use crate::event::EventRecord;

/// The reconstructed causal chain around one `detection` event.
#[derive(Debug, Clone)]
pub struct IncidentChain {
    /// The detection event itself.
    pub detection: EventRecord,
    /// The full chain in emission order: ancestors (root first), the
    /// detection, then every descendant.
    pub hops: Vec<EventRecord>,
    /// The `diagnosis.cause` descendants (reported root causes).
    pub root_causes: Vec<EventRecord>,
    /// Whether the chain's first hop is a `log.line` — i.e. the incident is
    /// traceable back to a concrete line of the operation's log.
    pub anchored: bool,
    /// Whether a `diagnosis.verdict` descendant exists — i.e. the
    /// dispatched diagnosis ran to completion and reported.
    pub diagnosed: bool,
}

impl IncidentChain {
    /// An unbroken chain: anchored at a log line *and* carried through to a
    /// diagnosis verdict.
    pub fn complete(&self) -> bool {
        self.anchored && self.diagnosed
    }

    /// Virtual time from the first hop to the diagnosis verdict (or the
    /// last hop when no verdict exists).
    pub fn elapsed(&self) -> SimDuration {
        let first = match self.hops.first() {
            Some(h) => h.at,
            None => return SimDuration::from_micros(0),
        };
        let last = self
            .hops
            .iter()
            .rev()
            .find(|h| h.kind == "diagnosis.verdict")
            .or(self.hops.last())
            .map(|h| h.at)
            .unwrap_or(first);
        last.duration_since(first)
    }
}

/// The number of incident chains [`incidents`] would reconstruct — one
/// per `detection` event — without building them. The per-run accounting
/// in a soak only needs the count, and full reconstruction clones every
/// hop's strings.
pub fn incident_count(records: &[EventRecord]) -> usize {
    records.iter().filter(|e| e.kind == "detection").count()
}

/// Reconstructs one [`IncidentChain`] per `detection` event in `records`.
pub fn incidents(records: &[EventRecord]) -> Vec<IncidentChain> {
    let by_id: BTreeMap<u64, &EventRecord> = records.iter().map(|e| (e.id, e)).collect();
    let mut children: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
    for event in records {
        if let Some(parent) = event.parent {
            children.entry(parent).or_default().push(event.id);
        }
    }
    let mut chains = Vec::new();
    for event in records.iter().filter(|e| e.kind == "detection") {
        // Ancestors: walk parent links to the root (or to an evicted id).
        let mut ancestors: Vec<&EventRecord> = Vec::new();
        let mut cursor = event.parent;
        while let Some(id) = cursor {
            let Some(parent) = by_id.get(&id) else {
                break; // evicted from the ring: chain is cut here
            };
            ancestors.push(parent);
            cursor = parent.parent;
        }
        ancestors.reverse();
        // Descendants: everything reachable through child links.
        let mut reached: BTreeSet<u64> = BTreeSet::new();
        let mut frontier = vec![event.id];
        while let Some(id) = frontier.pop() {
            if let Some(kids) = children.get(&id) {
                for &kid in kids {
                    if reached.insert(kid) {
                        frontier.push(kid);
                    }
                }
            }
        }
        let mut hops: Vec<EventRecord> = ancestors.into_iter().cloned().collect();
        hops.push(event.clone());
        let mut descendants: Vec<EventRecord> = reached
            .iter()
            .filter_map(|id| by_id.get(id).map(|e| (*e).clone()))
            .collect();
        descendants.sort_by_key(|e| (e.at, e.id));
        hops.extend(descendants);
        let anchored = hops.first().map(|h| h.kind == "log.line").unwrap_or(false);
        let diagnosed = hops.iter().any(|h| h.kind == "diagnosis.verdict");
        let root_causes = hops
            .iter()
            .filter(|h| h.kind == "diagnosis.cause")
            .cloned()
            .collect();
        chains.push(IncidentChain {
            detection: event.clone(),
            hops,
            root_causes,
            anchored,
            diagnosed,
        });
    }
    chains
}

fn attr_summary(event: &EventRecord, width: usize) -> String {
    let mut parts = Vec::new();
    for (k, v) in &event.attrs {
        let v: String = if v.chars().count() > width {
            let cut: String = v.chars().take(width.saturating_sub(1)).collect();
            format!("{cut}…")
        } else {
            v.clone()
        };
        parts.push(format!("{k}={v}"));
    }
    parts.join(" ")
}

/// Renders one incident chain as an ASCII timeline: one row per hop with
/// the hop's virtual timestamp and the latency since the previous hop.
pub fn render_timeline(chain: &IncidentChain) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "incident #{}: {} — {} hops, {} from first evidence to verdict, chain {}",
        chain.detection.id,
        chain.detection.name,
        chain.hops.len(),
        chain.elapsed(),
        if chain.complete() {
            "complete (log line -> root cause)"
        } else if chain.anchored {
            "anchored but undiagnosed"
        } else {
            "BROKEN (no log-line anchor)"
        },
    );
    let mut previous = chain.hops.first().map(|h| h.at);
    for (i, hop) in chain.hops.iter().enumerate() {
        let delta = previous
            .map(|p| hop.at.duration_since(p))
            .unwrap_or_else(|| SimDuration::from_micros(0));
        previous = Some(hop.at);
        let marker = if i == 0 { "   " } else { "-> " };
        let _ = writeln!(
            out,
            "  {:>12}  {:>10}  {}{:<20} {:<28} {}",
            hop.at.to_string(),
            if i == 0 {
                String::new()
            } else {
                format!("+{delta}")
            },
            marker,
            hop.kind,
            hop.name,
            attr_summary(hop, 56),
        );
    }
    for cause in &chain.root_causes {
        let _ = writeln!(
            out,
            "  root cause: {} {}",
            cause.name,
            attr_summary(cause, 120)
        );
    }
    out
}

/// Renders every incident in `records` (see [`incidents`]), separated by
/// blank lines; a fixed message when no detection occurred.
pub fn render_timelines(records: &[EventRecord]) -> String {
    let chains = incidents(records);
    if chains.is_empty() {
        return "no incidents: no detection events in this trace\n".to_string();
    }
    let rendered: Vec<String> = chains.iter().map(render_timeline).collect();
    rendered.join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Obs;
    use pod_sim::SimDuration;

    /// Emits the canonical chain: log.line -> conformance.verdict ->
    /// detection -> diagnosis.dispatch -> faulttree.test* ->
    /// diagnosis.cause + diagnosis.verdict.
    fn canonical_chain(obs: &Obs) {
        let step = SimDuration::from_millis(10);
        let line = obs.event("log.line", "asgard.log");
        line.attr("message", "launch configuration updated");
        obs.clock().advance(step);
        let verdict = obs.event_under(line.id(), "conformance.verdict", "conformance:unfit");
        obs.clock().advance(step);
        let det = obs.event_under(verdict.id(), "detection", "conformance-unfit");
        obs.clock().advance(step);
        let dispatch = obs.event_under(det.id(), "diagnosis.dispatch", "asg-tree");
        obs.clock().advance(step);
        let test = obs.event_under(dispatch.id(), "faulttree.test", "wrong-ami");
        obs.clock().advance(step);
        obs.event_under(test.id(), "diagnosis.cause", "wrong-ami")
            .attr("description", "the launch configuration uses a wrong AMI");
        obs.event_under(dispatch.id(), "diagnosis.verdict", "1 root cause(s)");
    }

    #[test]
    fn reconstructs_an_unbroken_chain() {
        let obs = Obs::detached();
        obs.begin_run("t");
        canonical_chain(&obs);
        let chains = incidents(&obs.events().records());
        assert_eq!(chains.len(), 1);
        let chain = &chains[0];
        assert!(chain.anchored);
        assert!(chain.diagnosed);
        assert!(chain.complete());
        assert_eq!(chain.hops.len(), 7);
        assert_eq!(chain.hops[0].kind, "log.line");
        assert_eq!(chain.root_causes.len(), 1);
        assert_eq!(chain.elapsed(), SimDuration::from_millis(50));
    }

    #[test]
    fn chain_without_log_anchor_is_flagged_broken() {
        let obs = Obs::detached();
        obs.begin_run("t");
        let det = obs.event("detection", "one-off-timer");
        obs.event_under(det.id(), "diagnosis.dispatch", "asg-tree");
        let chains = incidents(&obs.events().records());
        assert!(!chains[0].anchored);
        assert!(!chains[0].complete());
        assert!(render_timeline(&chains[0]).contains("BROKEN"));
    }

    #[test]
    fn timeline_renders_hops_with_latency() {
        let obs = Obs::detached();
        obs.begin_run("t");
        canonical_chain(&obs);
        let out = render_timelines(&obs.events().records());
        assert!(
            out.contains("incident #2: conformance-unfit"),
            "got:\n{out}"
        );
        assert!(
            out.contains("complete (log line -> root cause)"),
            "got:\n{out}"
        );
        assert!(out.contains("+10ms"), "per-hop latency:\n{out}");
        assert!(out.contains("root cause: wrong-ami"), "got:\n{out}");
        assert!(
            out.contains("message=launch configuration updated"),
            "got:\n{out}"
        );
    }

    #[test]
    fn unrelated_events_stay_out_of_the_chain() {
        let obs = Obs::detached();
        obs.begin_run("t");
        canonical_chain(&obs);
        obs.event("log.line", "unrelated.log");
        let chains = incidents(&obs.events().records());
        assert_eq!(chains[0].hops.len(), 7);
    }

    #[test]
    fn no_detections_renders_a_fixed_message() {
        let obs = Obs::detached();
        obs.begin_run("t");
        obs.event("log.line", "asgard.log");
        assert!(render_timelines(&obs.events().records()).contains("no incidents"));
    }
}
