//! Log-scale (HDR-style) histograms with tail exemplars.
//!
//! The fixed-bucket [`Histogram`](crate::Histogram) needs its bounds chosen
//! up front; at gateway scale the interesting latencies span five orders of
//! magnitude and the fixed bounds either waste buckets or lose the tail. A
//! [`LogHistogram`] instead uses base-2 buckets with 8 linear sub-buckets
//! per octave: bucket index is computed from the value's bit pattern in
//! O(1) (no bounds search), the relative quantile error is bounded by
//! 1/8 = 12.5% everywhere, and the layout is identical for every instance,
//! so snapshots always merge losslessly.
//!
//! Tail observations can carry an **exemplar** — the virtual timestamp,
//! the causal event id and free-form labels (operation, instance, shard) of
//! one concrete observation — so a p99 read from the histogram links
//! straight back to the run that produced it. Exemplar capture is guarded
//! by an atomic floor: observations below the smallest retained exemplar
//! value never take the lock or build labels.
//!
//! Snapshots are exported as ordinary [`HistogramSnapshot`]s (the log-scale
//! bounds are just a particular bounds vector), so every existing renderer,
//! diff and merge path works unchanged.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use parking_lot::Mutex;
use pod_sim::SimTime;

use crate::metrics::HistogramSnapshot;

/// log2 of the number of linear sub-buckets per octave.
const SUB_BITS: u32 = 3;
/// Linear sub-buckets per octave (8 → ≤ 12.5% relative error).
const SUB: u64 = 1 << SUB_BITS;
/// Octaves above the exact range; the top bound is `(2*SUB << 36) - 1`
/// ≈ 2^40 µs ≈ 12.7 virtual days — far beyond any virtual-time latency.
const OCTAVES: u32 = 37;
/// Bounded buckets (one more overflow bucket follows).
const NUM_BOUNDS: usize = SUB as usize + (OCTAVES as usize) * SUB as usize;
/// Retained tail exemplars per histogram.
pub const EXEMPLAR_CAP: usize = 8;

/// The shared log-scale bounds: inclusive upper bounds of every bounded
/// bucket. Identical for all [`LogHistogram`]s, so their snapshots always
/// merge on the fast path.
pub fn log_bounds() -> &'static [u64] {
    static BOUNDS: OnceLock<Vec<u64>> = OnceLock::new();
    BOUNDS.get_or_init(|| {
        let mut bounds = Vec::with_capacity(NUM_BOUNDS);
        // Values 0..SUB are exact (unit-width buckets).
        for v in 0..SUB {
            bounds.push(v);
        }
        for octave in 0..OCTAVES {
            for m in 0..SUB {
                bounds.push(((SUB + m + 1) << octave) - 1);
            }
        }
        bounds
    })
}

/// The bucket a value lands in, computed from its bit pattern.
fn index_for(value: u64) -> usize {
    if value < SUB {
        return value as usize;
    }
    let msb = 63 - value.leading_zeros();
    let octave = msb - SUB_BITS;
    if octave >= OCTAVES {
        return NUM_BOUNDS; // overflow bucket
    }
    let offset = ((value >> octave) - SUB) as usize;
    SUB as usize + octave as usize * SUB as usize + offset
}

/// One concrete tail observation retained alongside a histogram, linking an
/// aggregate quantile back to the run that produced it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Exemplar {
    /// The observed value (same unit as the histogram).
    pub value: u64,
    /// Virtual time of the observation.
    pub at: SimTime,
    /// The causal event the observation belongs to, when known — the hook
    /// into [`crate::incidents`] timelines.
    pub event: Option<u64>,
    /// Free-form labels, e.g. `op`, `instance`, `shard`.
    pub labels: Vec<(String, String)>,
}

#[derive(Debug)]
struct LogHistogramInner {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    /// Values below this floor cannot enter the exemplar reservoir; once
    /// the reservoir is full this is the smallest retained value, so the
    /// hot path skips the lock (and label building) for non-tail values.
    tail_floor: AtomicU64,
    exemplars: Mutex<Vec<Exemplar>>,
}

/// A log-scale histogram of `u64` observations with a bounded reservoir of
/// tail [`Exemplar`]s. Cloning shares the cells.
#[derive(Debug, Clone)]
pub struct LogHistogram(Arc<LogHistogramInner>);

impl Default for LogHistogram {
    fn default() -> LogHistogram {
        LogHistogram::new()
    }
}

impl LogHistogram {
    /// Creates an empty histogram.
    pub fn new() -> LogHistogram {
        LogHistogram(Arc::new(LogHistogramInner {
            buckets: (0..=NUM_BOUNDS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            tail_floor: AtomicU64::new(0),
            exemplars: Mutex::new(Vec::new()),
        }))
    }

    /// Records one observation (no exemplar).
    pub fn record(&self, value: u64) {
        let h = &self.0;
        h.buckets[index_for(value)].fetch_add(1, Ordering::Relaxed);
        h.count.fetch_add(1, Ordering::Relaxed);
        h.sum.fetch_add(value, Ordering::Relaxed);
        h.min.fetch_min(value, Ordering::Relaxed);
        h.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records one observation and offers it to the tail-exemplar
    /// reservoir. `exemplar` is only called when the value is large enough
    /// to enter the reservoir, so label allocation stays off the common
    /// path.
    pub fn record_with<F: FnOnce() -> Exemplar>(&self, value: u64, exemplar: F) {
        self.record(value);
        if value < self.0.tail_floor.load(Ordering::Relaxed) {
            return;
        }
        let mut pool = self.0.exemplars.lock();
        if pool.len() >= EXEMPLAR_CAP {
            // Evict the smallest retained exemplar; equal values keep the
            // earlier one (stable under re-observation of the same tail).
            let (weakest, weakest_value) = pool
                .iter()
                .enumerate()
                .map(|(i, e)| (i, e.value))
                .min_by_key(|&(_, v)| v)
                .expect("reservoir is non-empty at capacity");
            if value <= weakest_value {
                return;
            }
            pool.swap_remove(weakest);
        }
        pool.push(exemplar());
        if pool.len() >= EXEMPLAR_CAP {
            let floor = pool.iter().map(|e| e.value).min().unwrap_or(0);
            self.0.tail_floor.store(floor, Ordering::Relaxed);
        }
    }

    /// The number of recorded observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// The retained tail exemplars, largest value first.
    pub fn exemplars(&self) -> Vec<Exemplar> {
        let mut out = self.0.exemplars.lock().clone();
        out.sort_by(|a, b| b.value.cmp(&a.value).then(a.at.cmp(&b.at)));
        out
    }

    /// Copies the current state as an ordinary [`HistogramSnapshot`] over
    /// the shared log-scale bounds.
    pub(crate) fn snapshot(&self) -> HistogramSnapshot {
        let h = &self.0;
        HistogramSnapshot {
            bounds: log_bounds().to_vec(),
            buckets: h
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: h.count.load(Ordering::Relaxed),
            sum: h.sum.load(Ordering::Relaxed),
            min: h.min.load(Ordering::Relaxed),
            max: h.max.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_ascend_and_match_the_index_function() {
        let bounds = log_bounds();
        assert_eq!(bounds.len(), NUM_BOUNDS);
        assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds must ascend");
        // index_for must agree with the generic partition_point placement
        // used by the fixed-bucket histogram.
        for value in (0..4096u64)
            .chain((0..50).map(|i| 1u64 << (i % 40)))
            .chain([u64::MAX, (SUB << 36) * 2 - 1])
        {
            let expected = bounds.partition_point(|&b| b < value);
            assert_eq!(index_for(value), expected, "value {value}");
        }
    }

    #[test]
    fn relative_error_is_bounded_by_an_eighth() {
        let bounds = log_bounds();
        for value in [8u64, 100, 999, 70_000, 1_290_000, 10_440_000] {
            let bound = bounds[index_for(value)];
            assert!(bound >= value);
            let err = (bound - value) as f64 / value as f64;
            assert!(err <= 0.125, "value {value} bound {bound} err {err}");
        }
    }

    #[test]
    fn snapshot_quantiles_track_the_tail() {
        let h = LogHistogram::new();
        for _ in 0..99 {
            h.record(1_000);
        }
        h.record(1_000_000);
        let snap = h.snapshot();
        assert_eq!(snap.count, 100);
        let p50 = snap.quantile(0.5).unwrap();
        assert!((1_000..=1_125).contains(&p50), "p50 {p50}");
        // Rank 99 of 100 is still a 1 ms observation; only the very last
        // rank reaches the 1 s outlier.
        let p99 = snap.quantile(0.99).unwrap();
        assert!((1_000..=1_125).contains(&p99), "p99 {p99}");
        assert_eq!(snap.quantile(0.995), Some(1_000_000));
        assert_eq!(snap.quantile(1.0), Some(1_000_000));
    }

    #[test]
    fn exemplars_keep_the_largest_observations() {
        let h = LogHistogram::new();
        let mut built = 0u32;
        for v in (0..100u64).rev() {
            h.record_with(v * 10, || {
                built += 1;
                Exemplar {
                    value: v * 10,
                    at: SimTime::from_micros(v),
                    event: Some(v),
                    labels: vec![("op".to_string(), format!("i-{v}"))],
                }
            });
        }
        let tail = h.exemplars();
        assert_eq!(tail.len(), EXEMPLAR_CAP);
        assert_eq!(tail[0].value, 990);
        assert!(tail.iter().all(|e| e.value >= 920), "{tail:?}");
        // The floor keeps label construction off the common path: once the
        // reservoir is full, below-floor values never build an exemplar.
        assert!(
            (built as usize) < 100,
            "floor never engaged: {built} exemplars built"
        );
        let h2 = LogHistogram::new();
        h2.record_with(5, || Exemplar {
            value: 5,
            at: SimTime::ZERO,
            event: None,
            labels: Vec::new(),
        });
        assert_eq!(h2.exemplars().len(), 1);
    }

    #[test]
    fn overflow_values_land_in_the_overflow_bucket() {
        let h = LogHistogram::new();
        h.record(u64::MAX);
        let snap = h.snapshot();
        assert_eq!(snap.buckets[NUM_BOUNDS], 1);
        assert_eq!(snap.quantile(0.5), Some(u64::MAX));
    }

    #[test]
    fn concurrent_recording_is_consistent() {
        let h = LogHistogram::new();
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        h.record_with(t * 1000 + i, || Exemplar {
                            value: t * 1000 + i,
                            at: SimTime::from_micros(i),
                            event: None,
                            labels: Vec::new(),
                        });
                    }
                })
            })
            .collect();
        for j in handles {
            j.join().unwrap();
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 4000);
        assert_eq!(snap.buckets.iter().sum::<u64>(), 4000);
        assert_eq!(h.exemplars().len(), EXEMPLAR_CAP);
    }
}
