//! The span/trace layer: nested spans on the virtual clock, one trace per
//! run, with ASCII tree and flame-style rendering.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Arc;

use parking_lot::Mutex;
use pod_sim::{Clock, SimDuration, SimTime};

/// Upper bound on retained finished spans per trace; beyond it spans are
/// counted in [`Tracer::dropped`] instead of stored.
const SPAN_CAP: usize = 4096;

/// A completed span.
///
/// `name` and attribute keys are `&'static str`: every call site names
/// them with literals, and per-line spans (`conformance.replay`) must not
/// allocate for strings the binary already contains.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Unique id within the trace (ascending in start order).
    pub id: u64,
    /// The enclosing span, if any.
    pub parent: Option<u64>,
    /// Span name, e.g. `faulttree.walk` or `cloud.api.call`.
    pub name: &'static str,
    /// Virtual-clock start.
    pub start: SimTime,
    /// Virtual-clock end.
    pub end: SimTime,
    /// Key/value attributes in insertion order.
    pub attrs: Vec<(&'static str, String)>,
}

impl SpanRecord {
    /// The span's virtual duration.
    pub fn duration(&self) -> SimDuration {
        self.end.duration_since(self.start)
    }
}

#[derive(Debug)]
struct OpenSpan {
    id: u64,
    parent: Option<u64>,
    name: &'static str,
    start: SimTime,
    attrs: Vec<(&'static str, String)>,
}

#[derive(Debug, Default)]
struct TracerInner {
    trace_id: String,
    next_id: u64,
    stack: Vec<u64>,
    open: Vec<OpenSpan>,
    finished: Vec<SpanRecord>,
    dropped: u64,
}

/// Records nested spans against a virtual clock. Cloning shares the trace.
#[derive(Debug, Clone)]
pub struct Tracer {
    clock: Clock,
    inner: Arc<Mutex<TracerInner>>,
}

impl Tracer {
    /// Creates a tracer reading timestamps from `clock`.
    pub fn new(clock: Clock) -> Tracer {
        Tracer {
            clock,
            inner: Arc::new(Mutex::new(TracerInner::default())),
        }
    }

    /// Starts a fresh trace identified by `trace_id` (normally the run
    /// id), discarding all spans of the previous trace.
    pub fn begin_trace(&self, trace_id: &str) {
        let mut inner = self.inner.lock();
        *inner = TracerInner {
            trace_id: trace_id.to_string(),
            ..TracerInner::default()
        };
    }

    /// The current trace id (empty before the first [`begin_trace`]).
    ///
    /// [`begin_trace`]: Tracer::begin_trace
    pub fn trace_id(&self) -> String {
        self.inner.lock().trace_id.clone()
    }

    /// Opens a span nested under the innermost open span. The span closes
    /// when the returned guard drops.
    pub fn span(&self, name: &'static str) -> SpanGuard {
        let start = self.clock.now();
        let mut inner = self.inner.lock();
        let id = inner.next_id;
        inner.next_id += 1;
        let parent = inner.stack.last().copied();
        inner.open.push(OpenSpan {
            id,
            parent,
            name,
            start,
            attrs: Vec::new(),
        });
        inner.stack.push(id);
        SpanGuard {
            tracer: Some(self.clone()),
            id,
        }
    }

    /// Records an already-completed span retroactively: it starts at
    /// `started_at`, ends now, and nests under the innermost *open* span.
    ///
    /// This is the cheap half of outcome-conditional tracing: a hot path
    /// notes its virtual start time (a clock read, no lock, no
    /// allocation), runs to completion, and only materialises the span
    /// when the outcome turns out to be anomalous. Because spans measure
    /// *virtual* time, the retroactive record is exactly what an eagerly
    /// opened span would have captured — minus the two lock round-trips
    /// and the allocation every healthy call would otherwise pay.
    /// Returns the span id.
    pub fn record_span(
        &self,
        name: &'static str,
        started_at: SimTime,
        attrs: Vec<(&'static str, String)>,
    ) -> u64 {
        let end = self.clock.now();
        let mut inner = self.inner.lock();
        let id = inner.next_id;
        inner.next_id += 1;
        let parent = inner.stack.last().copied();
        if inner.finished.len() >= SPAN_CAP {
            inner.dropped += 1;
            return id;
        }
        inner.finished.push(SpanRecord {
            id,
            parent,
            name,
            start: started_at,
            end,
            attrs,
        });
        id
    }

    fn set_attr(&self, id: u64, key: &'static str, value: String) {
        let mut inner = self.inner.lock();
        if let Some(open) = inner.open.iter_mut().find(|s| s.id == id) {
            open.attrs.push((key, value));
        }
    }

    fn finish(&self, id: u64) {
        let end = self.clock.now();
        let mut inner = self.inner.lock();
        let Some(pos) = inner.open.iter().position(|s| s.id == id) else {
            return;
        };
        let open = inner.open.remove(pos);
        inner.stack.retain(|&s| s != id);
        if inner.finished.len() >= SPAN_CAP {
            inner.dropped += 1;
            return;
        }
        let record = SpanRecord {
            id: open.id,
            parent: open.parent,
            name: open.name,
            start: open.start,
            end,
            attrs: open.attrs,
        };
        inner.finished.push(record);
    }

    /// All finished spans, in completion order.
    pub fn finished(&self) -> Vec<SpanRecord> {
        self.inner.lock().finished.clone()
    }

    /// Runs `f` over the finished spans without cloning them — the
    /// latency-budget accounting reads every span of a run, and a deep
    /// copy per read would dwarf the cost being measured.
    pub fn with_finished<R>(&self, f: impl FnOnce(&[SpanRecord]) -> R) -> R {
        f(&self.inner.lock().finished)
    }

    /// The id of the innermost open span, if any — used to correlate
    /// causal events with the span they were emitted under.
    pub fn current_span_id(&self) -> Option<u64> {
        self.inner.lock().stack.last().copied()
    }

    /// Spans discarded after the retention cap was reached.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().dropped
    }

    /// The number of spans currently open.
    pub fn open_count(&self) -> usize {
        self.inner.lock().open.len()
    }

    /// Renders the finished spans as an indented tree in start order.
    pub fn render_tree(&self) -> String {
        let inner = self.inner.lock();
        let mut spans = inner.finished.clone();
        spans.sort_by_key(|s| (s.start, s.id));
        let ids: std::collections::BTreeSet<u64> = spans.iter().map(|s| s.id).collect();
        let mut children: BTreeMap<Option<u64>, Vec<&SpanRecord>> = BTreeMap::new();
        for span in &spans {
            // Spans whose parent was evicted render as roots.
            let parent = span.parent.filter(|p| ids.contains(p));
            children.entry(parent).or_default().push(span);
        }
        let mut out = String::new();
        let _ = writeln!(
            out,
            "trace {} ({} spans{})",
            if inner.trace_id.is_empty() {
                "<unnamed>"
            } else {
                &inner.trace_id
            },
            spans.len(),
            if inner.dropped > 0 {
                format!(", {} dropped", inner.dropped)
            } else {
                String::new()
            }
        );
        fn walk(
            out: &mut String,
            children: &BTreeMap<Option<u64>, Vec<&SpanRecord>>,
            parent: Option<u64>,
            depth: usize,
        ) {
            let Some(list) = children.get(&parent) else {
                return;
            };
            for span in list {
                let attrs = if span.attrs.is_empty() {
                    String::new()
                } else {
                    let parts: Vec<String> =
                        span.attrs.iter().map(|(k, v)| format!("{k}={v}")).collect();
                    format!("  {}", parts.join(" "))
                };
                let _ = writeln!(
                    out,
                    "{}{} [{} +{}]{}",
                    "  ".repeat(depth + 1),
                    span.name,
                    span.start,
                    span.duration(),
                    attrs,
                );
                walk(out, children, Some(span.id), depth + 1);
            }
        }
        walk(&mut out, &children, None, 0);
        out
    }

    /// Renders a flame-style aggregation: per span name, call count, total
    /// and self virtual time, with bars scaled to the hottest name.
    pub fn render_flame(&self) -> String {
        let spans = self.finished();
        if spans.is_empty() {
            return "flame: no spans recorded\n".to_string();
        }
        let mut child_time: BTreeMap<u64, u64> = BTreeMap::new();
        for span in &spans {
            if let Some(parent) = span.parent {
                *child_time.entry(parent).or_insert(0) += span.duration().as_micros();
            }
        }
        struct Agg {
            count: u64,
            total_us: u64,
            self_us: u64,
        }
        let mut by_name: BTreeMap<&str, Agg> = BTreeMap::new();
        for span in &spans {
            let total = span.duration().as_micros();
            let own = total.saturating_sub(child_time.get(&span.id).copied().unwrap_or(0));
            let agg = by_name.entry(span.name).or_insert(Agg {
                count: 0,
                total_us: 0,
                self_us: 0,
            });
            agg.count += 1;
            agg.total_us += total;
            agg.self_us += own;
        }
        let mut rows: Vec<(&str, Agg)> = by_name.into_iter().collect();
        rows.sort_by(|a, b| b.1.total_us.cmp(&a.1.total_us).then(a.0.cmp(b.0)));
        let peak = rows.first().map(|(_, a)| a.total_us).unwrap_or(1).max(1);
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<34} {:>6} {:>12} {:>12}  flame",
            "span", "count", "total", "self"
        );
        for (name, agg) in rows {
            let width = ((agg.total_us as f64 / peak as f64) * 24.0).round() as usize;
            let _ = writeln!(
                out,
                "{:<34} {:>6} {:>12} {:>12}  {}",
                name,
                agg.count,
                SimDuration::from_micros(agg.total_us).to_string(),
                SimDuration::from_micros(agg.self_us).to_string(),
                "#".repeat(width.max(1)),
            );
        }
        out
    }
}

/// RAII guard for an open span; dropping it closes the span at the
/// clock's current virtual time.
///
/// When telemetry is off ([`crate::TelemetryMode::Off`]) the guard is
/// inert: it holds no tracer, and `attr`/drop are no-ops, so call sites
/// need no mode checks of their own.
#[derive(Debug)]
pub struct SpanGuard {
    tracer: Option<Tracer>,
    id: u64,
}

impl SpanGuard {
    /// An inert guard recording nothing (telemetry off).
    pub(crate) fn disabled() -> SpanGuard {
        SpanGuard {
            tracer: None,
            id: u64::MAX,
        }
    }

    /// Attaches a key/value attribute to the span.
    pub fn attr(&self, key: &'static str, value: impl std::fmt::Display) {
        if let Some(tracer) = &self.tracer {
            tracer.set_attr(self.id, key, value.to_string());
        }
    }

    /// The span's id within the trace (`u64::MAX` for an inert guard).
    pub fn id(&self) -> u64 {
        self.id
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(tracer) = &self.tracer {
            tracer.finish(self.id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn advance(clock: &Clock, ms: u64) {
        clock.advance(SimDuration::from_millis(ms));
    }

    #[test]
    fn spans_nest_under_the_innermost_open_span() {
        let clock = Clock::new();
        let tracer = Tracer::new(clock.clone());
        tracer.begin_trace("run-1");
        {
            let outer = tracer.span("outer");
            advance(&clock, 10);
            {
                let inner = tracer.span("inner");
                inner.attr("k", 3);
                advance(&clock, 5);
            }
            outer.attr("steps", "2");
            advance(&clock, 1);
        }
        let spans = tracer.finished();
        assert_eq!(spans.len(), 2);
        // Completion order: inner finishes first.
        assert_eq!(spans[0].name, "inner");
        assert_eq!(spans[1].name, "outer");
        assert_eq!(spans[0].parent, Some(spans[1].id));
        assert_eq!(spans[0].duration(), SimDuration::from_millis(5));
        assert_eq!(spans[1].duration(), SimDuration::from_millis(16));
        assert_eq!(spans[0].attrs, vec![("k", "3".to_string())]);
        assert_eq!(tracer.open_count(), 0);
    }

    #[test]
    fn sibling_spans_share_a_parent() {
        let clock = Clock::new();
        let tracer = Tracer::new(clock.clone());
        tracer.begin_trace("run-2");
        let root = tracer.span("walk");
        for _ in 0..3 {
            let t = tracer.span("test");
            advance(&clock, 2);
            drop(t);
        }
        drop(root);
        let spans = tracer.finished();
        let root_id = spans.iter().find(|s| s.name == "walk").unwrap().id;
        assert_eq!(
            spans.iter().filter(|s| s.parent == Some(root_id)).count(),
            3
        );
    }

    #[test]
    fn begin_trace_resets_state() {
        let clock = Clock::new();
        let tracer = Tracer::new(clock.clone());
        tracer.begin_trace("run-a");
        drop(tracer.span("x"));
        assert_eq!(tracer.finished().len(), 1);
        tracer.begin_trace("run-b");
        assert_eq!(tracer.finished().len(), 0);
        assert_eq!(tracer.trace_id(), "run-b");
    }

    #[test]
    fn tree_rendering_indents_children() {
        let clock = Clock::new();
        let tracer = Tracer::new(clock.clone());
        tracer.begin_trace("run-3");
        {
            let _outer = tracer.span("upgrade.step");
            advance(&clock, 3);
            let api = tracer.span("cloud.api.call");
            api.attr("op", "DescribeAsg");
            advance(&clock, 80);
        }
        let tree = tracer.render_tree();
        assert!(tree.contains("trace run-3 (2 spans)"), "got:\n{tree}");
        assert!(tree.contains("  upgrade.step ["), "got:\n{tree}");
        assert!(tree.contains("    cloud.api.call ["), "got:\n{tree}");
        assert!(tree.contains("op=DescribeAsg"), "got:\n{tree}");
    }

    #[test]
    fn flame_rendering_aggregates_by_name() {
        let clock = Clock::new();
        let tracer = Tracer::new(clock.clone());
        tracer.begin_trace("run-4");
        {
            let _w = tracer.span("walk");
            for _ in 0..2 {
                let _t = tracer.span("test");
                advance(&clock, 10);
            }
        }
        let flame = tracer.render_flame();
        assert!(flame.contains("walk"), "got:\n{flame}");
        let test_line = flame.lines().find(|l| l.starts_with("test")).unwrap();
        assert!(test_line.contains("2"), "count column: {test_line}");
    }

    #[test]
    fn span_cap_counts_dropped_spans() {
        let clock = Clock::new();
        let tracer = Tracer::new(clock.clone());
        tracer.begin_trace("run-5");
        for _ in 0..(SPAN_CAP + 10) {
            drop(tracer.span("s"));
        }
        assert_eq!(tracer.finished().len(), SPAN_CAP);
        assert_eq!(tracer.dropped(), 10);
    }
}
