//! The incident flight recorder: a black box for the diagnosis pipeline.
//!
//! Aggregate metrics tell you *that* something went wrong; by the time an
//! operator looks, the interesting window is gone. The [`FlightRecorder`]
//! keeps a bounded ring of periodic virtual-time [`FlightFrame`]s (full
//! metric snapshots) and stamps an [`IncidentMark`] — plus an immediate
//! extra frame — whenever the pipeline reports a detection. Dumping the
//! ring yields the last N frames *around* each incident, like an aircraft
//! black box, without unbounded memory: old frames are evicted and
//! counted.
//!
//! [`render_dashboard`] turns a dump into an ASCII dashboard — one
//! sparkline per metric over the frame window, with incident marks aligned
//! under the frame columns — used live by the gateway soak example.
//!
//! The recorder is metrics-side telemetry: it runs in every
//! [`TelemetryMode`](crate::TelemetryMode) (including `Off`) so the
//! overhead baseline pays the same frame cost as the full configuration.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::Arc;

use parking_lot::Mutex;
use pod_sim::{Clock, SimDuration, SimTime};

use crate::metrics::{Registry, Snapshot};

/// Upper bound on retained incident marks per recorder.
const INCIDENT_CAP: usize = 256;

/// Flight-recorder configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightConfig {
    /// Frames retained in the ring.
    pub capacity: usize,
    /// Minimum virtual time between periodic frames ([`FlightRecorder::tick`]
    /// is rate-limited to this; incident frames bypass it).
    pub interval: SimDuration,
}

impl Default for FlightConfig {
    fn default() -> FlightConfig {
        FlightConfig {
            capacity: 64,
            interval: SimDuration::from_secs(30),
        }
    }
}

/// One periodic snapshot frame.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightFrame {
    /// Virtual time the frame was taken.
    pub at: SimTime,
    /// Full metric snapshot at that instant.
    pub snapshot: Snapshot,
}

/// One incident stamp.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IncidentMark {
    /// Virtual time of the incident.
    pub at: SimTime,
    /// Label, e.g. the operation instance that detected.
    pub label: String,
}

/// Everything the recorder holds at dump time.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FlightDump {
    /// Retained frames, oldest first.
    pub frames: Vec<FlightFrame>,
    /// Retained incident marks, oldest first.
    pub incidents: Vec<IncidentMark>,
    /// Frames evicted from the ring before the dump.
    pub evicted_frames: u64,
    /// Incident marks dropped after [`INCIDENT_CAP`].
    pub dropped_incidents: u64,
}

#[derive(Debug, Default)]
struct FlightInner {
    frames: VecDeque<FlightFrame>,
    incidents: Vec<IncidentMark>,
    evicted_frames: u64,
    dropped_incidents: u64,
    last_frame: Option<SimTime>,
}

/// Bounded ring of periodic metric snapshots with on-incident stamping.
/// Cloning shares the ring.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    clock: Clock,
    registry: Registry,
    config: FlightConfig,
    inner: Arc<Mutex<FlightInner>>,
}

impl FlightRecorder {
    /// Creates a recorder snapshotting `registry` on `clock` time.
    pub fn new(clock: Clock, registry: Registry, config: FlightConfig) -> FlightRecorder {
        FlightRecorder {
            clock,
            registry,
            config: FlightConfig {
                capacity: config.capacity.max(2),
                ..config
            },
            inner: Arc::new(Mutex::new(FlightInner::default())),
        }
    }

    /// Records a periodic frame if at least [`FlightConfig::interval`] has
    /// passed since the last one. Returns whether a frame was recorded.
    /// Cheap to call once per drained batch.
    pub fn tick(&self) -> bool {
        let now = self.clock.now();
        {
            let inner = self.inner.lock();
            if let Some(last) = inner.last_frame {
                if now.duration_since(last) < self.config.interval {
                    return false;
                }
            }
        }
        self.force_frame();
        true
    }

    /// Records a frame right now, bypassing the interval gate.
    pub fn force_frame(&self) {
        let frame = FlightFrame {
            at: self.clock.now(),
            snapshot: self.registry.snapshot(),
        };
        let mut inner = self.inner.lock();
        inner.last_frame = Some(frame.at);
        if inner.frames.len() >= self.config.capacity {
            inner.frames.pop_front();
            inner.evicted_frames += 1;
        }
        inner.frames.push_back(frame);
    }

    /// Stamps an incident and records an immediate frame, so the dump
    /// always holds the metric state at the moment of detection.
    pub fn mark_incident(&self, label: &str) {
        {
            let mut inner = self.inner.lock();
            if inner.incidents.len() >= INCIDENT_CAP {
                inner.dropped_incidents += 1;
            } else {
                let at = self.clock.now();
                inner.incidents.push(IncidentMark {
                    at,
                    label: label.to_string(),
                });
            }
        }
        self.force_frame();
    }

    /// The number of retained frames.
    pub fn frames_len(&self) -> usize {
        self.inner.lock().frames.len()
    }

    /// The number of retained incident marks.
    pub fn incidents_len(&self) -> usize {
        self.inner.lock().incidents.len()
    }

    /// Copies the black box out.
    pub fn dump(&self) -> FlightDump {
        let inner = self.inner.lock();
        FlightDump {
            frames: inner.frames.iter().cloned().collect(),
            incidents: inner.incidents.clone(),
            evicted_frames: inner.evicted_frames,
            dropped_incidents: inner.dropped_incidents,
        }
    }
}

/// Sparkline alphabet, lowest to highest.
const SPARK: &[u8] = b" .:-=+*#%@";

fn sparkline(series: &[u64]) -> String {
    let peak = series.iter().copied().max().unwrap_or(0);
    series
        .iter()
        .map(|&v| {
            if peak == 0 {
                ' '
            } else {
                let level = ((v as f64 / peak as f64) * (SPARK.len() - 1) as f64).round() as usize;
                SPARK[level.min(SPARK.len() - 1)] as char
            }
        })
        .collect()
}

/// Renders a dump as an ASCII dashboard: one sparkline per requested
/// metric across the frame window, scaled to its own peak.
///
/// Counters plot the **per-frame delta** (rate shape); gauges plot the
/// instantaneous value; histograms plot the cumulative p99. A final
/// `incidents` row marks the frame column each incident landed in with
/// `!`, followed by one line per mark.
pub fn render_dashboard(dump: &FlightDump, metrics: &[&str]) -> String {
    let mut out = String::new();
    let frames = &dump.frames;
    if frames.is_empty() {
        return "flight recorder: no frames recorded\n".to_string();
    }
    let _ = writeln!(
        out,
        "flight recorder: {} frames [{} .. {}], {} incident mark{}{}",
        frames.len(),
        frames.first().unwrap().at,
        frames.last().unwrap().at,
        dump.incidents.len(),
        if dump.incidents.len() == 1 { "" } else { "s" },
        if dump.evicted_frames > 0 {
            format!(", {} frames evicted", dump.evicted_frames)
        } else {
            String::new()
        },
    );
    for &name in metrics {
        let (series, last_text): (Vec<u64>, String) = if frames
            .iter()
            .any(|f| f.snapshot.histograms.contains_key(name))
        {
            let series: Vec<u64> = frames
                .iter()
                .map(|f| {
                    f.snapshot
                        .histogram(name)
                        .and_then(|h| h.quantile(0.99))
                        .unwrap_or(0)
                })
                .collect();
            let last = *series.last().unwrap();
            let text = if name.ends_with("_us") {
                format!("p99 {}", SimDuration::from_micros(last))
            } else {
                format!("p99 {last}")
            };
            (series, text)
        } else if frames.iter().any(|f| f.snapshot.gauges.contains_key(name)) {
            let series: Vec<u64> = frames
                .iter()
                .map(|f| f.snapshot.gauges.get(name).copied().unwrap_or(0).max(0) as u64)
                .collect();
            let text = series.last().unwrap().to_string();
            (series, text)
        } else {
            // Counter: plot the per-frame delta so the sparkline shows
            // the rate shape, not a monotone ramp.
            let totals: Vec<u64> = frames.iter().map(|f| f.snapshot.counter(name)).collect();
            let series: Vec<u64> = totals
                .iter()
                .enumerate()
                .map(|(i, &v)| if i == 0 { v } else { v - totals[i - 1].min(v) })
                .collect();
            (series, format!("total {}", totals.last().unwrap()))
        };
        let _ = writeln!(out, "{:<38} |{}| {}", name, sparkline(&series), last_text);
    }
    // Overload during bursts (recovery storms, replay floods) must be
    // visible alongside the incident marks even when the caller did not ask
    // for it: append every gateway shed/admission counter the frames saw,
    // the fast-path recovery speculation counters (prestage hit/waste) —
    // misprediction cost belongs next to the shedding rows — and the
    // storm's admission ledger (requests/admitted/throttled/deferred/
    // swept), so shed-to-sweep pressure shows up without opt-in.
    let last_frame = frames.last().unwrap();
    let overload: Vec<&str> = last_frame
        .snapshot
        .counters
        .keys()
        .filter(|name| {
            (name.starts_with("gateway.shed.")
                || name.starts_with("gateway.admission.")
                || name.starts_with("gateway.backpressure.")
                || name.starts_with("recovery.prestage.")
                || name.starts_with("recovery.dispatch.")
                || name.starts_with("recovery.storm."))
                && !metrics.contains(&name.as_str())
        })
        .map(|name| name.as_str())
        .collect();
    for name in overload {
        let totals: Vec<u64> = frames.iter().map(|f| f.snapshot.counter(name)).collect();
        let series: Vec<u64> = totals
            .iter()
            .enumerate()
            .map(|(i, &v)| if i == 0 { v } else { v - totals[i - 1].min(v) })
            .collect();
        let _ = writeln!(
            out,
            "{:<38} |{}| total {}",
            name,
            sparkline(&series),
            totals.last().unwrap()
        );
    }
    // The recovery dispatcher's queue depth (staged speculations plus
    // deferred reviews) and the storm's in-flight/backlog pressure are
    // gauges, not counters: plot levels, not deltas.
    let queues: Vec<&str> = last_frame
        .snapshot
        .gauges
        .keys()
        .filter(|name| {
            (name.starts_with("recovery.queue.") || name.starts_with("recovery.storm."))
                && !metrics.contains(&name.as_str())
        })
        .map(|name| name.as_str())
        .collect();
    for name in queues {
        let series: Vec<u64> = frames
            .iter()
            .map(|f| f.snapshot.gauges.get(name).copied().unwrap_or(0).max(0) as u64)
            .collect();
        let _ = writeln!(
            out,
            "{:<38} |{}| {}",
            name,
            sparkline(&series),
            series.last().unwrap()
        );
    }
    if !dump.incidents.is_empty() {
        let marks: String = frames
            .iter()
            .enumerate()
            .map(|(i, f)| {
                let window_start = if i == 0 { None } else { Some(frames[i - 1].at) };
                let hit = dump
                    .incidents
                    .iter()
                    .any(|inc| inc.at <= f.at && window_start.map(|s| inc.at > s).unwrap_or(true));
                if hit {
                    '!'
                } else {
                    '.'
                }
            })
            .collect();
        let _ = writeln!(out, "{:<38} |{}|", "incidents", marks);
        for inc in &dump.incidents {
            let _ = writeln!(out, "  ! {} {}", inc.at, inc.label);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recorder(capacity: usize, interval_ms: u64) -> (Clock, Registry, FlightRecorder) {
        let clock = Clock::new();
        let registry = Registry::new();
        let rec = FlightRecorder::new(
            clock.clone(),
            registry.clone(),
            FlightConfig {
                capacity,
                interval: SimDuration::from_millis(interval_ms),
            },
        );
        (clock, registry, rec)
    }

    #[test]
    fn tick_is_interval_gated_and_the_ring_is_bounded() {
        let (clock, _reg, rec) = recorder(4, 10);
        assert!(rec.tick(), "first tick always records");
        assert!(!rec.tick(), "no virtual time passed");
        for _ in 0..10 {
            clock.advance(SimDuration::from_millis(10));
            assert!(rec.tick());
        }
        let dump = rec.dump();
        assert_eq!(dump.frames.len(), 4);
        assert_eq!(dump.evicted_frames, 7);
        assert!(
            dump.frames.windows(2).all(|w| w[0].at < w[1].at),
            "frames stay ordered oldest-first"
        );
    }

    #[test]
    fn incidents_stamp_a_frame_immediately() {
        let (clock, reg, rec) = recorder(8, 1_000);
        rec.tick();
        clock.advance(SimDuration::from_millis(3));
        reg.counter("engine.detections").incr();
        rec.mark_incident("i-0042 detection");
        let dump = rec.dump();
        assert_eq!(dump.frames.len(), 2, "interval gate bypassed");
        assert_eq!(dump.incidents.len(), 1);
        assert_eq!(dump.incidents[0].at, SimTime::from_millis(3));
        assert_eq!(
            dump.frames
                .last()
                .unwrap()
                .snapshot
                .counter("engine.detections"),
            1,
            "the incident frame holds the state at detection time"
        );
    }

    #[test]
    fn dashboard_renders_sparklines_and_incident_marks() {
        let (clock, reg, rec) = recorder(16, 10);
        let c = reg.counter("gateway.lines.processed");
        let h = reg.log_histogram("gateway.queue_wait_us");
        for i in 0..6u64 {
            c.add(i * 100);
            h.record(1_000 * (i + 1));
            if i == 3 {
                rec.mark_incident("i-0003 detection");
            }
            rec.tick();
            clock.advance(SimDuration::from_millis(10));
        }
        let dump = rec.dump();
        let text = render_dashboard(
            &dump,
            &[
                "gateway.lines.processed",
                "gateway.queue_wait_us",
                "missing",
            ],
        );
        assert!(text.contains("flight recorder:"), "got:\n{text}");
        assert!(text.contains("gateway.lines.processed"), "got:\n{text}");
        assert!(text.contains("p99"), "got:\n{text}");
        assert!(text.contains("incidents"), "got:\n{text}");
        assert!(text.contains('!'), "got:\n{text}");
        assert!(text.contains("i-0003 detection"), "got:\n{text}");
        assert!(
            render_dashboard(&FlightDump::default(), &[]).contains("no frames"),
            "empty dump renders a placeholder"
        );
    }

    #[test]
    fn dashboard_surfaces_gateway_overload_counters_unasked() {
        let (clock, reg, rec) = recorder(16, 10);
        let shed = reg.counter("gateway.shed.oldest");
        let denied = reg.counter("gateway.admission.denied");
        let healthy = reg.counter("gateway.lines.processed");
        for i in 0..4u64 {
            healthy.add(100);
            if i >= 2 {
                shed.add(7);
                denied.incr();
            }
            rec.tick();
            clock.advance(SimDuration::from_millis(10));
        }
        let text = render_dashboard(&rec.dump(), &[]);
        assert!(text.contains("gateway.shed.oldest"), "got:\n{text}");
        assert!(text.contains("gateway.admission.denied"), "got:\n{text}");
        assert!(text.contains("total 14"), "got:\n{text}");
        assert!(
            !text.contains("gateway.lines.processed"),
            "healthy-path counters stay opt-in, got:\n{text}"
        );

        let asked = render_dashboard(&rec.dump(), &["gateway.shed.oldest"]);
        assert_eq!(
            asked.matches("gateway.shed.oldest").count(),
            1,
            "explicitly requested overload counters are not repeated, got:\n{asked}"
        );
    }

    #[test]
    fn dashboard_surfaces_recovery_fastpath_metrics_unasked() {
        let (clock, reg, rec) = recorder(16, 10);
        let staged = reg.counter("recovery.prestage.staged");
        let hit = reg.counter("recovery.prestage.hit");
        let waste = reg.counter("recovery.prestage.waste");
        let queue = reg.gauge("recovery.queue.depth");
        for i in 0..4u64 {
            staged.add(3);
            if i >= 1 {
                hit.incr();
                waste.add(2);
            }
            queue.set(3 - i as i64);
            rec.tick();
            clock.advance(SimDuration::from_millis(10));
        }
        let text = render_dashboard(&rec.dump(), &[]);
        assert!(text.contains("recovery.prestage.staged"), "got:\n{text}");
        assert!(text.contains("recovery.prestage.hit"), "got:\n{text}");
        assert!(text.contains("recovery.prestage.waste"), "got:\n{text}");
        assert!(
            text.contains("recovery.queue.depth"),
            "queue depth (a gauge) is plotted as levels, got:\n{text}"
        );

        let asked = render_dashboard(&rec.dump(), &["recovery.queue.depth"]);
        assert_eq!(
            asked.matches("recovery.queue.depth").count(),
            1,
            "explicitly requested gauges are not repeated, got:\n{asked}"
        );
    }
}
