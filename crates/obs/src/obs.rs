//! The [`Obs`] handle bundling clock, metrics registry, tracer and the
//! causal event log.

use pod_sim::Clock;

use crate::event::{Emitted, EventId, EventLog, Parent};
use crate::metrics::{Counter, Gauge, Histogram, Registry, Snapshot};
use crate::span::{SpanGuard, Tracer};

/// One observability context: a metrics [`Registry`], a [`Tracer`] and a
/// causal [`EventLog`], all timestamped from the same virtual [`Clock`].
/// Cloning is cheap and shares all state, so a single `Obs` created next
/// to the `Cloud` can be handed to every layer of the pipeline.
#[derive(Debug, Clone)]
pub struct Obs {
    clock: Clock,
    registry: Registry,
    tracer: Tracer,
    events: EventLog,
}

impl Obs {
    /// Creates an observability context on `clock`.
    pub fn new(clock: Clock) -> Obs {
        Obs {
            tracer: Tracer::new(clock.clone()),
            events: EventLog::new(clock.clone()),
            registry: Registry::new(),
            clock,
        }
    }

    /// A self-contained context on a fresh clock — the default for
    /// components constructed without a `Cloud` (conformance checker, log
    /// pipeline) until the engine hands them the shared context.
    pub fn detached() -> Obs {
        Obs::new(Clock::new())
    }

    /// The clock all timestamps come from.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// The metrics registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The span tracer.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The causal event log.
    pub fn events(&self) -> &EventLog {
        &self.events
    }

    /// Emits a causal event parented to the innermost ambient cause and
    /// correlated with the innermost open span.
    pub fn event(&self, kind: &str, name: &str) -> Emitted {
        self.events
            .emit(kind, name, Parent::Ambient, self.tracer.current_span_id())
    }

    /// Emits a causal event with an explicit parent (still correlated with
    /// the innermost open span).
    pub fn event_under(&self, parent: EventId, kind: &str, name: &str) -> Emitted {
        self.events.emit(
            kind,
            name,
            Parent::Of(parent),
            self.tracer.current_span_id(),
        )
    }

    /// Starts a fresh run: resets both the tracer and the event log to a
    /// new trace identified by `trace_id`.
    pub fn begin_run(&self, trace_id: &str) {
        self.tracer.begin_trace(trace_id);
        self.events.begin_trace(trace_id);
    }

    /// Counter accessor (see [`Registry::counter`]).
    pub fn counter(&self, name: &str) -> Counter {
        self.registry.counter(name)
    }

    /// Gauge accessor (see [`Registry::gauge`]).
    pub fn gauge(&self, name: &str) -> Gauge {
        self.registry.gauge(name)
    }

    /// Histogram accessor (see [`Registry::histogram`]).
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Histogram {
        self.registry.histogram(name, bounds)
    }

    /// Opens a span (see [`Tracer::span`]).
    pub fn span(&self, name: &str) -> SpanGuard {
        self.tracer.span(name)
    }

    /// Snapshots every metric.
    pub fn snapshot(&self) -> Snapshot {
        self.registry.snapshot()
    }
}

impl Default for Obs {
    fn default() -> Obs {
        Obs::detached()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pod_sim::SimDuration;

    #[test]
    fn clones_share_registry_and_tracer() {
        let obs = Obs::detached();
        let copy = obs.clone();
        copy.counter("x").incr();
        obs.tracer().begin_trace("t");
        drop(copy.span("s"));
        assert_eq!(obs.snapshot().counter("x"), 1);
        assert_eq!(obs.tracer().finished().len(), 1);
    }

    #[test]
    fn events_correlate_with_the_open_span() {
        let obs = Obs::detached();
        obs.begin_run("t");
        let guard = obs.span("conformance.replay");
        let ev = obs.event("conformance.verdict", "conformance:fit");
        let records = obs.events().records();
        assert_eq!(records[0].span, Some(guard.id()));
        assert_eq!(records[0].parent, None);
        let child = obs.event_under(ev.id(), "detection", "conformance-unfit");
        assert_eq!(child.id().get(), 1);
        assert_eq!(obs.events().records()[1].parent, Some(ev.id().get()));
    }

    #[test]
    fn begin_run_resets_tracer_and_events_together() {
        let obs = Obs::detached();
        obs.begin_run("a");
        drop(obs.span("s"));
        obs.event("e", "e");
        obs.begin_run("b");
        assert_eq!(obs.tracer().finished().len(), 0);
        assert!(obs.events().is_empty());
        assert_eq!(obs.events().trace_id(), "b");
    }

    #[test]
    fn spans_use_the_shared_clock() {
        let clock = Clock::new();
        let obs = Obs::new(clock.clone());
        obs.tracer().begin_trace("t");
        {
            let _s = obs.span("s");
            clock.advance(SimDuration::from_millis(7));
        }
        assert_eq!(
            obs.tracer().finished()[0].duration(),
            SimDuration::from_millis(7)
        );
    }
}
