//! The [`Obs`] handle bundling clock, metrics registry and tracer.

use pod_sim::Clock;

use crate::metrics::{Counter, Gauge, Histogram, Registry, Snapshot};
use crate::span::{SpanGuard, Tracer};

/// One observability context: a metrics [`Registry`] plus a [`Tracer`],
/// both timestamped from the same virtual [`Clock`]. Cloning is cheap and
/// shares all state, so a single `Obs` created next to the `Cloud` can be
/// handed to every layer of the pipeline.
#[derive(Debug, Clone)]
pub struct Obs {
    clock: Clock,
    registry: Registry,
    tracer: Tracer,
}

impl Obs {
    /// Creates an observability context on `clock`.
    pub fn new(clock: Clock) -> Obs {
        Obs {
            tracer: Tracer::new(clock.clone()),
            registry: Registry::new(),
            clock,
        }
    }

    /// A self-contained context on a fresh clock — the default for
    /// components constructed without a `Cloud` (conformance checker, log
    /// pipeline) until the engine hands them the shared context.
    pub fn detached() -> Obs {
        Obs::new(Clock::new())
    }

    /// The clock all timestamps come from.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// The metrics registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The span tracer.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Counter accessor (see [`Registry::counter`]).
    pub fn counter(&self, name: &str) -> Counter {
        self.registry.counter(name)
    }

    /// Gauge accessor (see [`Registry::gauge`]).
    pub fn gauge(&self, name: &str) -> Gauge {
        self.registry.gauge(name)
    }

    /// Histogram accessor (see [`Registry::histogram`]).
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Histogram {
        self.registry.histogram(name, bounds)
    }

    /// Opens a span (see [`Tracer::span`]).
    pub fn span(&self, name: &str) -> SpanGuard {
        self.tracer.span(name)
    }

    /// Snapshots every metric.
    pub fn snapshot(&self) -> Snapshot {
        self.registry.snapshot()
    }
}

impl Default for Obs {
    fn default() -> Obs {
        Obs::detached()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pod_sim::SimDuration;

    #[test]
    fn clones_share_registry_and_tracer() {
        let obs = Obs::detached();
        let copy = obs.clone();
        copy.counter("x").incr();
        obs.tracer().begin_trace("t");
        drop(copy.span("s"));
        assert_eq!(obs.snapshot().counter("x"), 1);
        assert_eq!(obs.tracer().finished().len(), 1);
    }

    #[test]
    fn spans_use_the_shared_clock() {
        let clock = Clock::new();
        let obs = Obs::new(clock.clone());
        obs.tracer().begin_trace("t");
        {
            let _s = obs.span("s");
            clock.advance(SimDuration::from_millis(7));
        }
        assert_eq!(
            obs.tracer().finished()[0].duration(),
            SimDuration::from_millis(7)
        );
    }
}
