//! The [`Obs`] handle bundling clock, metrics registry, tracer and the
//! causal event log, gated by a [`TelemetryMode`].

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;

use pod_sim::Clock;

use crate::event::{CauseScope, Emitted, EventId, EventLog, Parent};
use crate::hist2::LogHistogram;
use crate::metrics::{Counter, Gauge, Histogram, Registry, ShardedCounter, Snapshot};
use crate::span::{SpanGuard, Tracer};

/// How much telemetry an [`Obs`] context records.
///
/// Metrics (counters, gauges, histograms) are always on — they are cheap,
/// lock-free and required for correctness accounting. The mode gates the
/// *trace* side (spans and causal events), which allocates strings per
/// record and is what tail-based sampling decides to keep or discard:
///
/// - `Off` — spans and events become no-ops; the baseline for overhead
///   measurement.
/// - `Sampled` — spans/events are recorded per run and retained only when
///   the run's tail-sampling verdict says so (see
///   [`TailSampler`](crate::TailSampler)).
/// - `Full` — everything recorded and retained.
///
/// The mode never changes what the engine *does* — detections and
/// diagnoses are byte-identical across modes under a fixed seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TelemetryMode {
    /// Record nothing on the trace side.
    Off,
    /// Record per run, retain by tail-sampling verdict.
    Sampled,
    /// Record and retain everything.
    #[default]
    Full,
}

impl TelemetryMode {
    fn from_u8(v: u8) -> TelemetryMode {
        match v {
            0 => TelemetryMode::Off,
            1 => TelemetryMode::Sampled,
            _ => TelemetryMode::Full,
        }
    }

    fn as_u8(self) -> u8 {
        match self {
            TelemetryMode::Off => 0,
            TelemetryMode::Sampled => 1,
            TelemetryMode::Full => 2,
        }
    }

    /// Whether spans/events are recorded at all in this mode.
    pub fn records_traces(self) -> bool {
        self != TelemetryMode::Off
    }
}

impl std::fmt::Display for TelemetryMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            TelemetryMode::Off => "off",
            TelemetryMode::Sampled => "sampled",
            TelemetryMode::Full => "full",
        })
    }
}

/// One observability context: a metrics [`Registry`], a [`Tracer`] and a
/// causal [`EventLog`], all timestamped from the same virtual [`Clock`].
/// Cloning is cheap and shares all state (including the telemetry mode),
/// so a single `Obs` created next to the `Cloud` can be handed to every
/// layer of the pipeline.
#[derive(Debug, Clone)]
pub struct Obs {
    clock: Clock,
    registry: Registry,
    tracer: Tracer,
    events: EventLog,
    mode: Arc<AtomicU8>,
}

impl Obs {
    /// Creates an observability context on `clock` (mode
    /// [`TelemetryMode::Full`]).
    pub fn new(clock: Clock) -> Obs {
        Obs {
            tracer: Tracer::new(clock.clone()),
            events: EventLog::new(clock.clone()),
            registry: Registry::new(),
            clock,
            mode: Arc::new(AtomicU8::new(TelemetryMode::Full.as_u8())),
        }
    }

    /// A self-contained context on a fresh clock — the default for
    /// components constructed without a `Cloud` (conformance checker, log
    /// pipeline) until the engine hands them the shared context.
    pub fn detached() -> Obs {
        Obs::new(Clock::new())
    }

    /// The clock all timestamps come from.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// The metrics registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The span tracer.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The causal event log.
    pub fn events(&self) -> &EventLog {
        &self.events
    }

    /// The current telemetry mode.
    pub fn mode(&self) -> TelemetryMode {
        TelemetryMode::from_u8(self.mode.load(Ordering::Relaxed))
    }

    /// Sets the telemetry mode, shared by every clone of this context.
    pub fn set_mode(&self, mode: TelemetryMode) {
        self.mode.store(mode.as_u8(), Ordering::Relaxed);
    }

    /// Emits a causal event parented to the innermost ambient cause and
    /// correlated with the innermost open span. A no-op (inert handle)
    /// when the mode is [`TelemetryMode::Off`].
    pub fn event(&self, kind: &'static str, name: &str) -> Emitted {
        if !self.mode().records_traces() {
            return Emitted::disabled();
        }
        self.events
            .emit(kind, name, Parent::Ambient, self.tracer.current_span_id())
    }

    /// Emits a causal event with an explicit parent (still correlated with
    /// the innermost open span). A no-op when the mode is
    /// [`TelemetryMode::Off`].
    pub fn event_under(&self, parent: EventId, kind: &'static str, name: &str) -> Emitted {
        if !self.mode().records_traces() {
            return Emitted::disabled();
        }
        self.events.emit(
            kind,
            name,
            Parent::Of(parent),
            self.tracer.current_span_id(),
        )
    }

    /// Hot-path event emission: name and attribute values are moved in and
    /// the event lands in the ring under a single lock, with no `Emitted`
    /// handle constructed. Returns `None` (recording nothing) when the
    /// mode is [`TelemetryMode::Off`] — callers should build `name`/`attrs`
    /// only after checking [`Obs::mode`] so the off baseline pays nothing.
    pub fn event_with(
        &self,
        kind: &'static str,
        name: impl Into<std::borrow::Cow<'static, str>>,
        attrs: Vec<(&'static str, String)>,
    ) -> Option<EventId> {
        if !self.mode().records_traces() {
            return None;
        }
        Some(self.events.emit_with(
            kind,
            name,
            Parent::Ambient,
            self.tracer.current_span_id(),
            attrs,
        ))
    }

    /// Opens a *pending* cause scope (see [`EventLog::scope_pending`]): the
    /// event's ingredients are captured now, but it is only recorded if a
    /// descendant actually emits under the scope. The lazy counterpart of
    /// scoping an [`Obs::event_with`] id — healthy lines leave no trace.
    /// Returns a no-op scope when the mode is [`TelemetryMode::Off`].
    pub fn scope_cause(
        &self,
        kind: &'static str,
        name: impl Into<std::borrow::Cow<'static, str>>,
        attrs: Vec<(&'static str, String)>,
    ) -> CauseScope {
        if !self.mode().records_traces() {
            return self.events.scope(None);
        }
        self.events
            .scope_pending(kind, name, attrs, self.tracer.current_span_id())
    }

    /// Starts a fresh run: resets both the tracer and the event log to a
    /// new trace identified by `trace_id`.
    pub fn begin_run(&self, trace_id: &str) {
        self.tracer.begin_trace(trace_id);
        self.events.begin_trace(trace_id);
    }

    /// Counter accessor (see [`Registry::counter`]).
    pub fn counter(&self, name: &str) -> Counter {
        self.registry.counter(name)
    }

    /// Gauge accessor (see [`Registry::gauge`]).
    pub fn gauge(&self, name: &str) -> Gauge {
        self.registry.gauge(name)
    }

    /// Histogram accessor (see [`Registry::histogram`]).
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Histogram {
        self.registry.histogram(name, bounds)
    }

    /// Log-scale histogram accessor (see [`Registry::log_histogram`]).
    pub fn log_histogram(&self, name: &str) -> LogHistogram {
        self.registry.log_histogram(name)
    }

    /// Sharded counter accessor (see [`Registry::sharded_counter`]).
    pub fn sharded_counter(&self, name: &str, shards: usize) -> ShardedCounter {
        self.registry.sharded_counter(name, shards)
    }

    /// Retroactively records a completed span (see
    /// [`Tracer::record_span`]): the outcome-conditional pattern where a
    /// hot path notes its start time, and only materialises the span when
    /// the outcome is anomalous. Returns `None` (recording nothing) when
    /// the mode is [`TelemetryMode::Off`].
    pub fn record_span(
        &self,
        name: &'static str,
        started_at: pod_sim::SimTime,
        attrs: Vec<(&'static str, String)>,
    ) -> Option<u64> {
        if !self.mode().records_traces() {
            return None;
        }
        Some(self.tracer.record_span(name, started_at, attrs))
    }

    /// Opens a span (see [`Tracer::span`]). Returns an inert guard when
    /// the mode is [`TelemetryMode::Off`].
    pub fn span(&self, name: &'static str) -> SpanGuard {
        if !self.mode().records_traces() {
            return SpanGuard::disabled();
        }
        self.tracer.span(name)
    }

    /// Snapshots every metric.
    pub fn snapshot(&self) -> Snapshot {
        self.registry.snapshot()
    }
}

impl Default for Obs {
    fn default() -> Obs {
        Obs::detached()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pod_sim::SimDuration;

    #[test]
    fn clones_share_registry_and_tracer() {
        let obs = Obs::detached();
        let copy = obs.clone();
        copy.counter("x").incr();
        obs.tracer().begin_trace("t");
        drop(copy.span("s"));
        assert_eq!(obs.snapshot().counter("x"), 1);
        assert_eq!(obs.tracer().finished().len(), 1);
    }

    #[test]
    fn events_correlate_with_the_open_span() {
        let obs = Obs::detached();
        obs.begin_run("t");
        let guard = obs.span("conformance.replay");
        let ev = obs.event("conformance.verdict", "conformance:fit");
        let records = obs.events().records();
        assert_eq!(records[0].span, Some(guard.id()));
        assert_eq!(records[0].parent, None);
        let child = obs.event_under(ev.id(), "detection", "conformance-unfit");
        assert_eq!(child.id().get(), 1);
        assert_eq!(obs.events().records()[1].parent, Some(ev.id().get()));
    }

    #[test]
    fn begin_run_resets_tracer_and_events_together() {
        let obs = Obs::detached();
        obs.begin_run("a");
        drop(obs.span("s"));
        obs.event("e", "e");
        obs.begin_run("b");
        assert_eq!(obs.tracer().finished().len(), 0);
        assert!(obs.events().is_empty());
        assert_eq!(obs.events().trace_id(), "b");
    }

    #[test]
    fn off_mode_disables_traces_but_not_metrics() {
        let obs = Obs::detached();
        obs.begin_run("t");
        obs.set_mode(TelemetryMode::Off);
        assert_eq!(obs.clone().mode(), TelemetryMode::Off, "clones share mode");
        {
            let span = obs.span("s");
            span.attr("k", "v");
            assert_eq!(span.id(), u64::MAX);
            let ev = obs.event("detection", "x");
            ev.attr("k", "v");
            obs.event_under(ev.id(), "diagnosis.cause", "y");
        }
        assert_eq!(obs.tracer().finished().len(), 0);
        assert!(obs.events().is_empty());
        obs.counter("c").incr();
        assert_eq!(obs.snapshot().counter("c"), 1, "metrics stay on");
        obs.set_mode(TelemetryMode::Full);
        drop(obs.span("s2"));
        assert_eq!(obs.tracer().finished().len(), 1);
    }

    #[test]
    fn spans_use_the_shared_clock() {
        let clock = Clock::new();
        let obs = Obs::new(clock.clone());
        obs.tracer().begin_trace("t");
        {
            let _s = obs.span("s");
            clock.advance(SimDuration::from_millis(7));
        }
        assert_eq!(
            obs.tracer().finished()[0].duration(),
            SimDuration::from_millis(7)
        );
    }
}
