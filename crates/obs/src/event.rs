//! The causal event log: a ring buffer of instantaneous events with
//! explicit parent links, emitted at every pipeline hand-off.
//!
//! Spans answer *where the time went*; causal events answer *why a
//! diagnosis happened*. Every hand-off in the POD pipeline (a log line
//! raising triggers, a conformance verdict, an assertion result, a
//! consistent-layer retry, a fault-tree test, a diagnosis) emits one
//! [`EventRecord`]. Parent links connect an effect to its cause, so an
//! incident can be replayed hop by hop from the triggering log line to the
//! reported root cause (see the `timeline` module).
//!
//! Causality crosses layer boundaries (the engine calls the evaluator,
//! which calls the consistent API…), so threading explicit parent ids
//! through every signature would be invasive. Instead the log keeps an
//! ambient **cause stack**: a caller pushes the current cause with
//! [`EventLog::scope`] and every event emitted while the scope is alive is
//! parented to it by default. Explicit parents override the stack via
//! [`Parent::Of`].
//!
//! # Examples
//!
//! ```
//! use pod_obs::{EventLog, Parent};
//! use pod_sim::Clock;
//!
//! let log = EventLog::new(Clock::new());
//! log.begin_trace("run-1");
//! let line = log.emit("log.line", "asgard.log", Parent::Ambient, None);
//! let _scope = log.scope(Some(line.id()));
//! let verdict = log.emit("conformance.verdict", "conformance:unfit", Parent::Ambient, None);
//! assert_eq!(log.records()[1].parent, Some(line.id().get()));
//! assert_eq!(verdict.id().get(), 1);
//! ```

use std::borrow::Cow;
use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::Mutex;
use pod_sim::{Clock, SimTime};

/// Upper bound on retained events per trace. The buffer is a true ring:
/// beyond the cap the *oldest* events are evicted (and counted in
/// [`EventLog::dropped`]) so the most recent causality is always available.
const EVENT_CAP: usize = 16_384;

/// Identifier of a causal event within one trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(u64);

impl EventId {
    /// The raw id (ascending in emission order within a trace).
    pub fn get(self) -> u64 {
        self.0
    }
}

/// How an emitted event is linked to its cause.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Parent {
    /// Use the innermost active cause scope (none → root event).
    Ambient,
    /// Emit a root event regardless of active scopes.
    None,
    /// Link to this event explicitly.
    Of(EventId),
}

/// One recorded causal event.
///
/// `kind` and attribute keys are `&'static str`: every call site names
/// them with literals, and the hot path (one event per acted-on log line)
/// must not allocate for strings the binary already contains.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventRecord {
    /// Unique id within the trace (ascending in emission order).
    pub id: u64,
    /// The causing event, if any.
    pub parent: Option<u64>,
    /// The innermost open span at emission time, if any.
    pub span: Option<u64>,
    /// Virtual-clock emission time.
    pub at: SimTime,
    /// Hand-off kind, e.g. `log.line`, `conformance.verdict`, `detection`.
    pub kind: &'static str,
    /// Short label, e.g. the verdict tag or the fault-tree node id. A
    /// `Cow` so static labels (verdict tags) record without allocating.
    pub name: Cow<'static, str>,
    /// Key/value attributes in insertion order.
    pub attrs: Vec<(&'static str, String)>,
}

/// A cause that has been scoped but not yet recorded: the captured
/// ingredients of a `log.line`-style root event, materialised into the
/// ring only if a descendant event is actually emitted under it.
#[derive(Debug)]
struct PendingCause {
    kind: &'static str,
    name: Cow<'static, str>,
    attrs: Vec<(&'static str, String)>,
    span: Option<u64>,
    at: SimTime,
}

/// One frame of the ambient cause stack.
#[derive(Debug)]
enum CauseFrame {
    /// An already-recorded event id.
    Resolved(u64),
    /// A lazy root: recorded on first use as an ambient parent.
    Pending(PendingCause),
}

#[derive(Debug, Default)]
struct EventLogInner {
    trace_id: String,
    next_id: u64,
    ring: VecDeque<EventRecord>,
    dropped: u64,
    causes: Vec<CauseFrame>,
}

impl EventLogInner {
    fn push(&mut self, record: EventRecord) {
        if self.ring.len() >= EVENT_CAP {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(record);
    }

    /// Resolves the innermost ambient cause, materialising any pending
    /// frames (bottom-up, so a pending frame's own parent is the frame
    /// beneath it) into real ring records first.
    fn resolve_ambient(&mut self) -> Option<u64> {
        for i in 0..self.causes.len() {
            if matches!(self.causes[i], CauseFrame::Pending(_)) {
                let parent = match i.checked_sub(1).map(|j| &self.causes[j]) {
                    Some(CauseFrame::Resolved(id)) => Some(*id),
                    _ => None,
                };
                let id = self.next_id;
                self.next_id += 1;
                let CauseFrame::Pending(pending) =
                    std::mem::replace(&mut self.causes[i], CauseFrame::Resolved(id))
                else {
                    unreachable!("checked above");
                };
                self.push(EventRecord {
                    id,
                    parent,
                    span: pending.span,
                    at: pending.at,
                    kind: pending.kind,
                    name: pending.name,
                    attrs: pending.attrs,
                });
            }
        }
        self.causes.last().map(|frame| match frame {
            CauseFrame::Resolved(id) => *id,
            CauseFrame::Pending(_) => unreachable!("all pending frames resolved above"),
        })
    }
}

/// The shared causal event log. Cloning shares the buffer and cause stack.
#[derive(Debug, Clone)]
pub struct EventLog {
    clock: Clock,
    inner: Arc<Mutex<EventLogInner>>,
}

impl EventLog {
    /// Creates an event log timestamping from `clock`.
    pub fn new(clock: Clock) -> EventLog {
        EventLog {
            clock,
            inner: Arc::new(Mutex::new(EventLogInner::default())),
        }
    }

    /// Starts a fresh trace, discarding all events (and scopes) of the
    /// previous one.
    pub fn begin_trace(&self, trace_id: &str) {
        let mut inner = self.inner.lock();
        *inner = EventLogInner {
            trace_id: trace_id.to_string(),
            ..EventLogInner::default()
        };
    }

    /// The current trace id (empty before the first `begin_trace`).
    pub fn trace_id(&self) -> String {
        self.inner.lock().trace_id.clone()
    }

    /// Emits one event and returns a handle for attaching attributes.
    ///
    /// `span` is the id of the span the event belongs to (callers going
    /// through [`crate::Obs::event`] get the innermost open span filled in
    /// automatically).
    pub fn emit(
        &self,
        kind: &'static str,
        name: &str,
        parent: Parent,
        span: Option<u64>,
    ) -> Emitted {
        let id = self.emit_with(kind, name.to_string(), parent, span, Vec::new());
        Emitted {
            log: Some(self.clone()),
            id,
        }
    }

    /// Emits one event with its attributes attached in a single lock
    /// acquisition and without constructing a handle — the hot-path
    /// variant of [`EventLog::emit`] for per-line call sites (the log
    /// pipeline, the conformance checker). `name` and attribute values are
    /// moved in, so a caller that already owns them pays no extra clone.
    pub fn emit_with(
        &self,
        kind: &'static str,
        name: impl Into<Cow<'static, str>>,
        parent: Parent,
        span: Option<u64>,
        attrs: Vec<(&'static str, String)>,
    ) -> EventId {
        let name = name.into();
        let at = self.clock.now();
        let mut inner = self.inner.lock();
        let parent = match parent {
            Parent::Ambient => inner.resolve_ambient(),
            Parent::None => None,
            Parent::Of(p) => Some(p.get()),
        };
        let id = inner.next_id;
        inner.next_id += 1;
        inner.push(EventRecord {
            id,
            parent,
            span,
            at,
            kind,
            name,
            attrs,
        });
        EventId(id)
    }

    /// Pushes `cause` (when present) onto the ambient cause stack; the
    /// returned guard pops it on drop. A `None` cause is a no-op scope, so
    /// call sites can thread `Option<EventId>` without branching.
    pub fn scope(&self, cause: Option<EventId>) -> CauseScope {
        if let Some(cause) = cause {
            self.inner
                .lock()
                .causes
                .push(CauseFrame::Resolved(cause.get()));
        }
        CauseScope {
            log: self.clone(),
            active: cause.is_some(),
        }
    }

    /// Pushes a *pending* cause: the ingredients of a root event (kind,
    /// name, attrs, the current span and clock time) captured now but
    /// recorded only if some event is actually emitted under the scope
    /// with [`Parent::Ambient`].
    ///
    /// This keeps healthy hot paths silent: the log pipeline scopes every
    /// forwarded line as a pending `log.line`, yet only the handful of
    /// lines whose triggers produce a verdict, assertion result, or
    /// detection ever materialise into the ring. When nothing emits under
    /// the scope, dropping the guard discards the frame — no id, no ring
    /// slot, no allocation beyond the moved-in strings.
    pub fn scope_pending(
        &self,
        kind: &'static str,
        name: impl Into<Cow<'static, str>>,
        attrs: Vec<(&'static str, String)>,
        span: Option<u64>,
    ) -> CauseScope {
        let at = self.clock.now();
        self.inner
            .lock()
            .causes
            .push(CauseFrame::Pending(PendingCause {
                kind,
                name: name.into(),
                attrs,
                span,
                at,
            }));
        CauseScope {
            log: self.clone(),
            active: true,
        }
    }

    /// The innermost ambient cause, if a scope is active. Resolving the
    /// cause to a concrete id materialises pending frames, exactly as an
    /// ambient emission would.
    pub fn current_cause(&self) -> Option<EventId> {
        self.inner.lock().resolve_ambient().map(EventId)
    }

    /// All retained events, in emission order.
    pub fn records(&self) -> Vec<EventRecord> {
        self.inner.lock().ring.iter().cloned().collect()
    }

    /// Runs `f` over the retained events without cloning them — the
    /// accounting path ([`crate::incident_count`], journal rendering
    /// decisions) reads thousands of records per run, and a deep copy of
    /// every `String` in the ring would dwarf the cost being measured.
    pub fn with_records<R>(&self, f: impl FnOnce(&[EventRecord]) -> R) -> R {
        let mut inner = self.inner.lock();
        // O(1) unless the ring wrapped, which only happens past EVENT_CAP.
        f(inner.ring.make_contiguous())
    }

    /// The number of retained events.
    pub fn len(&self) -> usize {
        self.inner.lock().ring.len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().ring.is_empty()
    }

    /// Events evicted from the ring after the retention cap was reached.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().dropped
    }

    fn set_attr(&self, id: u64, key: &'static str, value: String) {
        let mut inner = self.inner.lock();
        // The ring is ordered by id; an evicted event is silently skipped.
        if let Some(record) = inner.ring.iter_mut().rev().find(|e| e.id == id) {
            record.attrs.push((key, value));
        }
    }
}

/// Handle to a just-emitted event.
///
/// When telemetry is off ([`crate::TelemetryMode::Off`]) the handle is
/// inert: it holds no log, `attr` is a no-op and `id` is a dummy, so call
/// sites need no mode checks of their own.
#[derive(Debug)]
pub struct Emitted {
    log: Option<EventLog>,
    id: EventId,
}

impl Emitted {
    /// An inert handle recording nothing (telemetry off).
    pub(crate) fn disabled() -> Emitted {
        Emitted {
            log: None,
            id: EventId(u64::MAX),
        }
    }

    /// Attaches a key/value attribute to the event.
    pub fn attr(&self, key: &'static str, value: impl std::fmt::Display) -> &Emitted {
        if let Some(log) = &self.log {
            log.set_attr(self.id.get(), key, value.to_string());
        }
        self
    }

    /// The event's id, for explicit parent links (`u64::MAX` for an inert
    /// handle).
    pub fn id(&self) -> EventId {
        self.id
    }
}

/// RAII guard for an ambient cause (see [`EventLog::scope`]).
#[derive(Debug)]
pub struct CauseScope {
    log: EventLog,
    active: bool,
}

impl Drop for CauseScope {
    fn drop(&mut self) {
        if self.active {
            self.log.inner.lock().causes.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn log() -> EventLog {
        let l = EventLog::new(Clock::new());
        l.begin_trace("t");
        l
    }

    #[test]
    fn events_link_to_the_ambient_cause() {
        let log = log();
        let root = log.emit("log.line", "asgard.log", Parent::Ambient, None);
        assert_eq!(log.records()[0].parent, None);
        {
            let _scope = log.scope(Some(root.id()));
            let child = log.emit("conformance.verdict", "fit", Parent::Ambient, Some(7));
            assert_eq!(log.current_cause(), Some(root.id()));
            let records = log.records();
            assert_eq!(records[1].parent, Some(root.id().get()));
            assert_eq!(records[1].span, Some(7));
            // Nested scopes stack.
            let _inner = log.scope(Some(child.id()));
            log.emit("detection", "assertion-log", Parent::Ambient, None);
            assert_eq!(log.records()[2].parent, Some(child.id().get()));
        }
        assert_eq!(log.current_cause(), None);
        log.emit("detection", "late", Parent::Ambient, None);
        assert_eq!(log.records()[3].parent, None);
    }

    #[test]
    fn explicit_parent_overrides_the_stack() {
        let log = log();
        let a = log.emit("a", "a", Parent::Ambient, None);
        let _scope = log.scope(Some(a.id()));
        log.emit("b", "b", Parent::None, None);
        let c = log.emit("c", "c", Parent::Of(a.id()), None);
        let records = log.records();
        assert_eq!(records[1].parent, None);
        assert_eq!(records[2].parent, Some(a.id().get()));
        assert_eq!(c.id().get(), 2);
    }

    #[test]
    fn pending_scope_records_nothing_when_unused() {
        let log = log();
        {
            let _scope = log.scope_pending("log.line", "asgard.log", Vec::new(), None);
            // Nothing emitted under the scope: the frame is discarded.
        }
        assert!(log.is_empty());
        // Ids were never consumed either.
        let ev = log.emit("e", "e", Parent::Ambient, None);
        assert_eq!(ev.id().get(), 0);
    }

    #[test]
    fn pending_scope_materialises_on_first_ambient_emit() {
        let clock = Clock::new();
        let log = EventLog::new(clock.clone());
        log.begin_trace("t");
        clock.advance(pod_sim::SimDuration::from_millis(5));
        let _scope = log.scope_pending(
            "log.line",
            "asgard.log",
            vec![("message", "Instance i-aa is ready".to_string())],
            Some(3),
        );
        clock.advance(pod_sim::SimDuration::from_millis(10));
        let child = log.emit(
            "conformance.verdict",
            "conformance:unfit",
            Parent::Ambient,
            None,
        );
        let records = log.records();
        // The root landed first, with the capture-time timestamp and span.
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].kind, "log.line");
        assert_eq!(records[0].at, SimTime::from_millis(5));
        assert_eq!(records[0].span, Some(3));
        assert_eq!(
            records[0].attrs,
            vec![("message", "Instance i-aa is ready".to_string())]
        );
        assert_eq!(records[1].parent, Some(records[0].id));
        assert!(records[0].id < child.id().get());
        // A second emission reuses the already-materialised id.
        log.emit("detection", "conformance-unfit", Parent::Ambient, None);
        assert_eq!(log.records()[2].parent, Some(records[0].id));
        assert_eq!(log.len(), 3);
    }

    #[test]
    fn nested_pending_frames_materialise_bottom_up() {
        let log = log();
        let _outer = log.scope_pending("log.line", "outer", Vec::new(), None);
        let _inner = log.scope_pending("log.line", "inner", Vec::new(), None);
        log.emit("detection", "d", Parent::Ambient, None);
        let records = log.records();
        assert_eq!(records.len(), 3);
        assert_eq!(records[0].name, "outer");
        assert_eq!(records[0].parent, None);
        assert_eq!(records[1].name, "inner");
        assert_eq!(records[1].parent, Some(records[0].id));
        assert_eq!(records[2].parent, Some(records[1].id));
    }

    #[test]
    fn current_cause_resolves_pending_frames() {
        let log = log();
        let _scope = log.scope_pending("log.line", "asgard.log", Vec::new(), None);
        let cause = log.current_cause().expect("scope is active");
        // Resolving materialised the root; later ambient emits chain to it.
        assert_eq!(log.len(), 1);
        log.emit("assertion.result", "late", Parent::Ambient, None);
        assert_eq!(log.records()[1].parent, Some(cause.get()));
    }

    #[test]
    fn explicit_parent_leaves_pending_frames_untouched() {
        let log = log();
        let a = log.emit("a", "a", Parent::Ambient, None);
        let _scope = log.scope_pending("log.line", "asgard.log", Vec::new(), None);
        log.emit("b", "b", Parent::Of(a.id()), None);
        log.emit("c", "c", Parent::None, None);
        // Neither explicit-parent nor root emissions consult the stack.
        assert_eq!(log.len(), 3);
        assert!(log.records().iter().all(|r| r.kind != "log.line"));
    }

    #[test]
    fn none_scope_is_a_no_op() {
        let log = log();
        {
            let _scope = log.scope(None);
            log.emit("x", "x", Parent::Ambient, None);
        }
        assert_eq!(log.records()[0].parent, None);
        assert_eq!(log.current_cause(), None);
    }

    #[test]
    fn attrs_attach_to_the_emitted_event() {
        let log = log();
        let ev = log.emit("assertion.result", "asg-desired", Parent::Ambient, None);
        ev.attr("outcome", "failed").attr("attempts", 3);
        let records = log.records();
        assert_eq!(
            records[0].attrs,
            vec![
                ("outcome", "failed".to_string()),
                ("attempts", "3".to_string())
            ]
        );
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let log = log();
        for i in 0..(EVENT_CAP + 5) {
            log.emit("e", &i.to_string(), Parent::Ambient, None);
        }
        assert_eq!(log.len(), EVENT_CAP);
        assert_eq!(log.dropped(), 5);
        // The oldest ids are gone; the newest survive.
        let records = log.records();
        assert_eq!(records.first().unwrap().id, 5);
        assert_eq!(records.last().unwrap().id, (EVENT_CAP + 4) as u64);
    }

    #[test]
    fn begin_trace_resets_everything() {
        let log = log();
        let a = log.emit("a", "a", Parent::Ambient, None);
        let _leaked = log.scope(Some(a.id()));
        log.begin_trace("t2");
        assert!(log.is_empty());
        assert_eq!(log.current_cause(), None);
        assert_eq!(log.trace_id(), "t2");
    }

    #[test]
    fn timestamps_come_from_the_clock() {
        let clock = Clock::new();
        let log = EventLog::new(clock.clone());
        log.begin_trace("t");
        clock.advance(pod_sim::SimDuration::from_millis(42));
        log.emit("e", "e", Parent::Ambient, None);
        assert_eq!(log.records()[0].at, SimTime::from_millis(42));
    }
}
