//! Trace exporters: Chrome trace-event JSON (loadable in Perfetto /
//! `chrome://tracing`) and an OTLP-style JSON document for spans+events.
//!
//! Both exporters serialise the same inputs — the finished [`SpanRecord`]s
//! of a trace plus its causal [`EventRecord`]s — and both are pure string
//! builders: `pod-obs` sits below `pod-log` in the dependency order, so it
//! cannot reuse the `pod-log` JSON value type and instead does its own
//! (minimal, escape-correct) serialisation.
//!
//! Timestamps are virtual-clock microseconds, which is exactly the unit the
//! Chrome trace-event format wants in `ts`/`dur`; the OTLP export multiplies
//! them up to nanoseconds. Under a fixed seed the exported documents are
//! byte-identical across runs.

use std::fmt::Write as _;

use crate::event::EventRecord;
use crate::span::SpanRecord;

/// Escapes `s` for embedding inside a JSON string literal.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn args_object(pairs: &[(&'static str, String)], extra: &[(&str, String)]) -> String {
    let mut parts: Vec<String> = Vec::with_capacity(pairs.len() + extra.len());
    for (k, v) in pairs {
        parts.push(format!("\"{}\":\"{}\"", escape_json(k), escape_json(v)));
    }
    for (k, v) in extra {
        parts.push(format!("\"{}\":\"{}\"", escape_json(k), escape_json(v)));
    }
    format!("{{{}}}", parts.join(","))
}

/// Renders a Chrome trace-event JSON document for one trace.
///
/// Spans become `ph:"X"` complete events, causal events become `ph:"i"`
/// instants, and every parent→child causal link becomes a `ph:"s"`/`ph:"f"`
/// flow pair so the evidence chain renders as arrows. Every emitted object
/// carries the `ph`, `ts`, `pid`, `tid` and `name` keys.
///
/// # Examples
///
/// ```
/// use pod_obs::{chrome_trace, Obs};
///
/// let obs = Obs::detached();
/// obs.begin_run("run-1");
/// drop(obs.span("conformance.replay"));
/// obs.event("log.line", "asgard.log");
/// let json = chrome_trace("run-1", &obs.tracer().finished(), &obs.events().records());
/// assert!(json.contains("\"traceEvents\""));
/// assert!(json.contains("\"ph\":\"X\""));
/// assert!(json.contains("\"ph\":\"i\""));
/// ```
pub fn chrome_trace(trace_id: &str, spans: &[SpanRecord], events: &[EventRecord]) -> String {
    let mut entries: Vec<String> = Vec::with_capacity(spans.len() + events.len() * 3 + 1);
    entries.push(format!(
        "{{\"ph\":\"M\",\"ts\":0,\"pid\":1,\"tid\":1,\"name\":\"process_name\",\
         \"args\":{{\"name\":\"{}\"}}}}",
        escape_json(trace_id)
    ));
    for span in spans {
        let mut extra = vec![("span_id", span.id.to_string())];
        if let Some(parent) = span.parent {
            extra.push(("parent_span_id", parent.to_string()));
        }
        entries.push(format!(
            "{{\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":1,\"name\":\"{}\",\
             \"cat\":\"span\",\"args\":{}}}",
            span.start.as_micros(),
            span.duration().as_micros(),
            escape_json(span.name),
            args_object(&span.attrs, &extra),
        ));
    }
    for event in events {
        let mut extra = vec![("event_id", event.id.to_string())];
        if let Some(parent) = event.parent {
            extra.push(("cause", parent.to_string()));
        }
        if let Some(span) = event.span {
            extra.push(("span_id", span.to_string()));
        }
        entries.push(format!(
            "{{\"ph\":\"i\",\"ts\":{},\"pid\":1,\"tid\":1,\"name\":\"{}\",\
             \"cat\":\"{}\",\"s\":\"t\",\"args\":{}}}",
            event.at.as_micros(),
            escape_json(&event.name),
            escape_json(event.kind),
            args_object(&event.attrs, &extra),
        ));
    }
    // Flow arrows for causal links. The flow id is the child event's id
    // (unique, since every event has at most one parent).
    for event in events {
        let Some(parent_id) = event.parent else {
            continue;
        };
        let Some(parent) = events.iter().find(|e| e.id == parent_id) else {
            continue; // parent evicted from the ring
        };
        entries.push(format!(
            "{{\"ph\":\"s\",\"ts\":{},\"pid\":1,\"tid\":1,\"name\":\"cause\",\
             \"cat\":\"cause\",\"id\":{}}}",
            parent.at.as_micros(),
            event.id,
        ));
        entries.push(format!(
            "{{\"ph\":\"f\",\"bp\":\"e\",\"ts\":{},\"pid\":1,\"tid\":1,\"name\":\"cause\",\
             \"cat\":\"cause\",\"id\":{}}}",
            event.at.as_micros(),
            event.id,
        ));
    }
    format!(
        "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n{}\n]}}\n",
        entries.join(",\n")
    )
}

/// Derives a stable 128-bit hex trace id from the run's string id (OTLP
/// requires 16 bytes; our run ids are human-readable strings).
fn otlp_trace_id(trace_id: &str) -> String {
    // FNV-1a, folded twice with different offsets for 128 bits.
    let mut lo: u64 = 0xcbf2_9ce4_8422_2325;
    let mut hi: u64 = 0x6c62_272e_07bb_0142;
    for b in trace_id.bytes() {
        lo = (lo ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        hi = (hi ^ b as u64)
            .wrapping_mul(0x0000_0100_0000_01b3)
            .rotate_left(7);
    }
    format!("{hi:016x}{lo:016x}")
}

fn otlp_attrs<K: AsRef<str>>(pairs: &[(K, String)]) -> String {
    let parts: Vec<String> = pairs
        .iter()
        .map(|(k, v)| {
            format!(
                "{{\"key\":\"{}\",\"value\":{{\"stringValue\":\"{}\"}}}}",
                escape_json(k.as_ref()),
                escape_json(v)
            )
        })
        .collect();
    format!("[{}]", parts.join(","))
}

/// Renders an OTLP-style JSON document (`resourceSpans` → `scopeSpans` →
/// `spans`) for one trace. Causal events are attached to the span they were
/// emitted under; events with no enclosing span land on a synthetic root
/// span named after the trace, so no event is lost in export.
///
/// # Examples
///
/// ```
/// use pod_obs::{otlp_json, Obs};
///
/// let obs = Obs::detached();
/// obs.begin_run("run-1");
/// drop(obs.span("faulttree.walk"));
/// let json = otlp_json("run-1", &obs.tracer().finished(), &obs.events().records());
/// assert!(json.contains("\"resourceSpans\""));
/// assert!(json.contains("faulttree.walk"));
/// ```
pub fn otlp_json(trace_id: &str, spans: &[SpanRecord], events: &[EventRecord]) -> String {
    let trace_hex = otlp_trace_id(trace_id);
    let nanos = |us: u64| us.saturating_mul(1000);
    let event_json = |event: &EventRecord| -> String {
        let mut attrs: Vec<(&'static str, String)> = vec![("event.kind", event.kind.to_string())];
        if let Some(parent) = event.parent {
            attrs.push(("event.cause", parent.to_string()));
        }
        attrs.push(("event.id", event.id.to_string()));
        attrs.extend(event.attrs.iter().cloned());
        format!(
            "{{\"timeUnixNano\":\"{}\",\"name\":\"{}\",\"attributes\":{}}}",
            nanos(event.at.as_micros()),
            escape_json(&event.name),
            otlp_attrs(&attrs),
        )
    };
    let span_ids: std::collections::BTreeSet<u64> = spans.iter().map(|s| s.id).collect();
    let mut span_entries: Vec<String> = Vec::with_capacity(spans.len() + 1);
    for span in spans {
        let span_events: Vec<String> = events
            .iter()
            .filter(|e| e.span == Some(span.id))
            .map(event_json)
            .collect();
        span_entries.push(format!(
            "{{\"traceId\":\"{}\",\"spanId\":\"{:016x}\",\"parentSpanId\":\"{}\",\
             \"name\":\"{}\",\"kind\":1,\
             \"startTimeUnixNano\":\"{}\",\"endTimeUnixNano\":\"{}\",\
             \"attributes\":{},\"events\":[{}]}}",
            trace_hex,
            span.id + 1, // OTLP forbids the all-zero span id
            span.parent
                .map(|p| format!("{:016x}", p + 1))
                .unwrap_or_default(),
            escape_json(span.name),
            nanos(span.start.as_micros()),
            nanos(span.end.as_micros()),
            otlp_attrs(&span.attrs),
            span_events.join(","),
        ));
    }
    let orphan_events: Vec<String> = events
        .iter()
        .filter(|e| e.span.map(|s| !span_ids.contains(&s)).unwrap_or(true))
        .map(event_json)
        .collect();
    if !orphan_events.is_empty() {
        let start = events.iter().map(|e| e.at.as_micros()).min().unwrap_or(0);
        let end = events.iter().map(|e| e.at.as_micros()).max().unwrap_or(0);
        span_entries.push(format!(
            "{{\"traceId\":\"{}\",\"spanId\":\"{:016x}\",\"parentSpanId\":\"\",\
             \"name\":\"{}\",\"kind\":1,\
             \"startTimeUnixNano\":\"{}\",\"endTimeUnixNano\":\"{}\",\
             \"attributes\":[],\"events\":[{}]}}",
            trace_hex,
            u64::MAX,
            escape_json(trace_id),
            nanos(start),
            nanos(end),
            orphan_events.join(","),
        ));
    }
    format!(
        "{{\"resourceSpans\":[{{\"resource\":{{\"attributes\":[{{\"key\":\"service.name\",\
         \"value\":{{\"stringValue\":\"pod-diagnosis\"}}}}]}},\
         \"scopeSpans\":[{{\"scope\":{{\"name\":\"pod-obs\"}},\"spans\":[\n{}\n]}}]}}]}}\n",
        span_entries.join(",\n")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Obs;
    use pod_sim::SimDuration;

    fn sample_obs() -> Obs {
        let obs = Obs::detached();
        obs.begin_run("run-x");
        {
            let span = obs.span("conformance.replay");
            span.attr("activity", "terminate \"old\" instance");
            let line = obs.event("log.line", "asgard.log");
            line.attr("message", "says \"hi\"\n");
            obs.clock().advance(SimDuration::from_millis(10));
            obs.event_under(line.id(), "conformance.verdict", "conformance:unfit");
        }
        obs
    }

    #[test]
    fn chrome_trace_has_required_keys_and_escapes_strings() {
        let obs = sample_obs();
        let json = chrome_trace("run-x", &obs.tracer().finished(), &obs.events().records());
        for key in ["\"ph\":", "\"ts\":", "\"pid\":", "\"tid\":", "\"name\":"] {
            assert!(json.contains(key), "missing {key} in:\n{json}");
        }
        assert!(
            json.contains("\"dur\":10000"),
            "span duration in µs:\n{json}"
        );
        assert!(json.contains("says \\\"hi\\\"\\n"), "escaping:\n{json}");
        // One flow pair for the causal link.
        assert!(json.contains("\"ph\":\"s\""), "flow start:\n{json}");
        assert!(json.contains("\"ph\":\"f\""), "flow finish:\n{json}");
        assert!(!json.contains('\u{0}'));
    }

    #[test]
    fn otlp_json_nests_events_under_their_span() {
        let obs = sample_obs();
        let json = otlp_json("run-x", &obs.tracer().finished(), &obs.events().records());
        assert!(json.contains("\"resourceSpans\""));
        assert!(json.contains("\"name\":\"conformance.replay\""));
        assert!(json.contains("\"name\":\"asgard.log\""));
        assert!(json.contains("\"startTimeUnixNano\":\"0\""));
        assert!(json.contains("\"endTimeUnixNano\":\"10000000\""));
        // Both events were emitted under the span, so no synthetic root.
        assert!(!json.contains(&format!("{:016x}", u64::MAX)));
    }

    #[test]
    fn otlp_json_collects_orphan_events_on_a_synthetic_root() {
        let obs = Obs::detached();
        obs.begin_run("run-y");
        obs.event("log.line", "asgard.log");
        let json = otlp_json("run-y", &obs.tracer().finished(), &obs.events().records());
        assert!(json.contains(&format!("{:016x}", u64::MAX)), "got:\n{json}");
        assert!(json.contains("\"name\":\"run-y\""));
    }

    #[test]
    fn trace_ids_are_stable_and_distinct() {
        assert_eq!(otlp_trace_id("run-1"), otlp_trace_id("run-1"));
        assert_ne!(otlp_trace_id("run-1"), otlp_trace_id("run-2"));
        assert_eq!(otlp_trace_id("run-1").len(), 32);
    }
}
