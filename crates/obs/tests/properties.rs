//! Property-based tests for the pod-obs metrics layer.

use pod_obs::{Registry, RunSignals, SampleVerdict, SamplerConfig, TailSampler};
use proptest::prelude::*;

/// An arbitrary completed-run signal set for the tail sampler.
fn arb_signals() -> impl Strategy<Value = RunSignals> {
    (0usize..4, 0usize..4, 0usize..4, any::<bool>()).prop_map(
        |(detections, errors, warnings, tail_exemplar)| RunSignals {
            trace_id: "op".to_string(),
            detections,
            errors,
            warnings,
            tail_exemplar,
        },
    )
}

proptest! {
    /// Percentile estimates are monotone in q and always bounded by the
    /// observed min/max, whatever the data and bucket layout.
    #[test]
    fn histogram_quantiles_are_monotone_and_bounded(
        values in prop::collection::vec(0u64..5_000_000, 1..200),
        qs in prop::collection::vec(0.0..1.0f64, 2..20),
    ) {
        let reg = Registry::new();
        let h = reg.histogram("h", pod_obs::LATENCY_BOUNDS_US);
        for &v in &values {
            h.record(v);
        }
        let snap = reg.snapshot();
        let hist = snap.histogram("h").unwrap();
        let lo = *values.iter().min().unwrap();
        let hi = *values.iter().max().unwrap();

        let mut sorted_qs = qs.clone();
        sorted_qs.sort_by(|a, b| a.total_cmp(b));
        let estimates: Vec<u64> =
            sorted_qs.iter().map(|&q| hist.quantile(q).unwrap()).collect();
        for pair in estimates.windows(2) {
            prop_assert!(pair[0] <= pair[1], "not monotone: {estimates:?}");
        }
        for &e in &estimates {
            prop_assert!(e >= lo && e <= hi, "estimate {e} outside [{lo}, {hi}]");
        }
        prop_assert_eq!(hist.quantile(0.0).unwrap(), lo);
        prop_assert_eq!(hist.quantile(1.0).unwrap(), hi);
    }

    /// diff followed by merge round-trips counter totals.
    #[test]
    fn snapshot_diff_then_merge_roundtrips(
        first in prop::collection::vec(0u64..100, 1..8),
        second in prop::collection::vec(0u64..100, 1..8),
    ) {
        let reg = Registry::new();
        let c = reg.counter("c");
        for &n in &first {
            c.add(n);
        }
        let mid = reg.snapshot();
        for &n in &second {
            c.add(n);
        }
        let end = reg.snapshot();
        let delta = end.diff(&mid);
        prop_assert_eq!(delta.counter("c"), second.iter().sum::<u64>());
        let mut rebuilt = mid.clone();
        rebuilt.merge(&delta);
        prop_assert_eq!(rebuilt.counter("c"), end.counter("c"));
    }

    /// Tail-sampler accounting never loses a decision: whatever mix of
    /// runs arrives and whatever keep rate is configured,
    /// `kept + discarded` equals the number of decisions and the
    /// per-reason breakdown sums exactly to `kept`.
    #[test]
    fn sampler_accounts_for_every_decision(
        runs in prop::collection::vec(arb_signals(), 1..100),
        keep_one_in in 0u64..20,
    ) {
        let reg = Registry::new();
        let sampler = TailSampler::new(&reg, SamplerConfig { keep_one_in });
        for signals in &runs {
            sampler.decide(signals);
        }
        prop_assert_eq!(
            sampler.kept() + sampler.discarded(),
            runs.len() as u64,
            "decisions lost: kept {} + discarded {} != {} runs",
            sampler.kept(), sampler.discarded(), runs.len()
        );
        let snap = reg.snapshot();
        prop_assert_eq!(
            snap.sum_counters("obs.sampler.kept."),
            snap.counter("obs.sampler.kept"),
            "per-reason breakdown does not sum to the kept total"
        );
    }

    /// Incident-relevant runs — any detection, error verdict, or
    /// degradation warning — are never sampled away, even at the most
    /// aggressive keep rate (`keep_one_in: 0` discards every healthy run).
    /// This is the property behind the flight-recorder guarantee that a
    /// detection's causal chain survives sampling.
    #[test]
    fn detections_and_warnings_are_never_discarded(
        runs in prop::collection::vec(arb_signals(), 1..100),
        keep_one_in in 0u64..20,
    ) {
        let reg = Registry::new();
        let sampler = TailSampler::new(&reg, SamplerConfig { keep_one_in });
        for signals in &runs {
            let verdict = sampler.decide(signals);
            if signals.incident_relevant() {
                prop_assert!(
                    verdict.keep(),
                    "incident-relevant run discarded: {signals:?} -> {verdict:?}"
                );
            }
            if signals.detections > 0 {
                prop_assert_eq!(verdict, SampleVerdict::KeptDetection);
            } else if signals.errors > 0 {
                prop_assert_eq!(verdict, SampleVerdict::KeptError);
            } else if signals.warnings > 0 {
                prop_assert_eq!(verdict, SampleVerdict::KeptWarning);
            }
        }
    }
}
