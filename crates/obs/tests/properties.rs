//! Property-based tests for the pod-obs metrics layer.

use pod_obs::Registry;
use proptest::prelude::*;

proptest! {
    /// Percentile estimates are monotone in q and always bounded by the
    /// observed min/max, whatever the data and bucket layout.
    #[test]
    fn histogram_quantiles_are_monotone_and_bounded(
        values in prop::collection::vec(0u64..5_000_000, 1..200),
        qs in prop::collection::vec(0.0..1.0f64, 2..20),
    ) {
        let reg = Registry::new();
        let h = reg.histogram("h", pod_obs::LATENCY_BOUNDS_US);
        for &v in &values {
            h.record(v);
        }
        let snap = reg.snapshot();
        let hist = snap.histogram("h").unwrap();
        let lo = *values.iter().min().unwrap();
        let hi = *values.iter().max().unwrap();

        let mut sorted_qs = qs.clone();
        sorted_qs.sort_by(|a, b| a.total_cmp(b));
        let estimates: Vec<u64> =
            sorted_qs.iter().map(|&q| hist.quantile(q).unwrap()).collect();
        for pair in estimates.windows(2) {
            prop_assert!(pair[0] <= pair[1], "not monotone: {estimates:?}");
        }
        for &e in &estimates {
            prop_assert!(e >= lo && e <= hi, "estimate {e} outside [{lo}, {hi}]");
        }
        prop_assert_eq!(hist.quantile(0.0).unwrap(), lo);
        prop_assert_eq!(hist.quantile(1.0).unwrap(), hi);
    }

    /// diff followed by merge round-trips counter totals.
    #[test]
    fn snapshot_diff_then_merge_roundtrips(
        first in prop::collection::vec(0u64..100, 1..8),
        second in prop::collection::vec(0u64..100, 1..8),
    ) {
        let reg = Registry::new();
        let c = reg.counter("c");
        for &n in &first {
            c.add(n);
        }
        let mid = reg.snapshot();
        for &n in &second {
            c.add(n);
        }
        let end = reg.snapshot();
        let delta = end.diff(&mid);
        prop_assert_eq!(delta.counter("c"), second.iter().sum::<u64>());
        let mut rebuilt = mid.clone();
        rebuilt.merge(&delta);
        prop_assert_eq!(rebuilt.counter("c"), end.counter("c"));
    }
}
