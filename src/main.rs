//! The `pod-diagnosis` command-line tool.
//!
//! ```text
//! pod-diagnosis campaign [runs-per-fault] [seed]   # the paper's evaluation
//! pod-diagnosis discover [runs]                    # mine Figure 2 from logs
//! pod-diagnosis monitor [seed] [fault#]            # one monitored upgrade
//! pod-diagnosis help
//! ```

use pod_diagnosis::eval::{render_report, Campaign, CampaignConfig};
use pod_diagnosis::mining::{mine_process, MiningConfig};
use pod_diagnosis::orchestrator::FaultType;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = args.first().map(String::as_str).unwrap_or("help");
    match command {
        "campaign" => campaign(&args[1..]),
        "discover" => discover(&args[1..]),
        "monitor" => monitor(&args[1..]),
        _ => help(),
    }
}

fn arg<T: std::str::FromStr>(args: &[String], idx: usize, default: T) -> T {
    args.get(idx)
        .and_then(|a| a.parse().ok())
        .unwrap_or(default)
}

fn help() {
    println!(
        "POD-Diagnosis — error diagnosis of sporadic operations (DSN 2014 reproduction)\n\n\
         USAGE:\n  pod-diagnosis campaign [runs-per-fault=20] [seed=2014]\n\
         \x20   run the fault-injection evaluation and print Table I, Figure 6, Figure 7\n\
         \x20 pod-diagnosis discover [runs=5]\n\
         \x20   mine the rolling-upgrade process model from generated operation logs\n\
         \x20 pod-diagnosis monitor [seed=7] [fault=1..8]\n\
         \x20   run one monitored upgrade with the given fault type injected\n\
         \x20 pod-diagnosis help"
    );
}

fn campaign(args: &[String]) {
    let config = CampaignConfig {
        runs_per_fault: arg(args, 0, 20),
        seed: arg(args, 1, 2014),
        ..CampaignConfig::default()
    };
    eprintln!(
        "running {} upgrades in virtual time...",
        config.runs_per_fault * 8
    );
    let report = Campaign::new(config).run();
    println!("{}", render_report(&report));
}

fn discover(args: &[String]) {
    use pod_diagnosis::eval::{build_scenario, ScenarioConfig};
    use pod_diagnosis::orchestrator::{CollectingObserver, RollingUpgrade};
    let runs: u64 = arg(args, 0, 5);
    let mut events = Vec::new();
    for seed in 1..=runs {
        let config = ScenarioConfig {
            seed,
            cluster_size: 4 + 2 * (seed % 3) as u32,
            ..ScenarioConfig::default()
        };
        let scenario = build_scenario(&config);
        let mut upgrade = RollingUpgrade::new(
            scenario.cloud.clone(),
            scenario.upgrade.clone(),
            scenario.trace_id.clone(),
        );
        let mut obs = CollectingObserver::default();
        upgrade.run(&mut obs);
        events.extend(obs.events);
    }
    match mine_process(
        &events,
        |e| e.field("taskid").map(str::to_string),
        &MiningConfig {
            model_name: "rolling-upgrade-mined".to_string(),
            ..MiningConfig::default()
        },
    ) {
        Ok(mined) => {
            println!("{}", mined.model.to_dot());
            let fitness =
                pod_diagnosis::process::replay_fitness(&mined.model, &mined.traces).fitness();
            eprintln!(
                "mined {} activities from {} traces; fitness {fitness:.4}",
                mined.model.task_names().len(),
                mined.traces.len()
            );
        }
        Err(e) => {
            eprintln!("discovery failed: {e}");
            std::process::exit(1);
        }
    }
}

fn monitor(args: &[String]) {
    use pod_diagnosis::eval::{execute_run, CampaignConfig};
    let seed: u64 = arg(args, 0, 7);
    let fault_no: usize = arg(args, 1, 1).clamp(1, 8);
    let fault = FaultType::all()[fault_no - 1];
    let campaign = Campaign::new(CampaignConfig {
        runs_per_fault: 1,
        seed,
        interference_fraction: 0.0,
        transient_fraction: 0.0,
        reinject_fraction: 0.0,
        large_cluster_every: 0,
        ..CampaignConfig::default()
    });
    let plan = campaign
        .plans()
        .into_iter()
        .find(|p| p.fault == fault)
        .expect("every fault type has a plan");
    eprintln!("monitoring one upgrade with injected fault: {fault}");
    let record = execute_run(&plan);
    println!(
        "fault injected at {}; detected: {}; diagnosed correctly: {}",
        record.truth.injected_at,
        record.outcome.fault_detected,
        record.outcome.fault_diagnosed_correctly
    );
    println!(
        "detections: {} raw ({} diagnosed); first diagnosis {}",
        record.outcome.raw_detections,
        record.outcome.diagnosis_times.len(),
        record
            .outcome
            .diagnosis_times
            .first()
            .map(|d| d.to_string())
            .unwrap_or_else(|| "-".to_string()),
    );
}
