//! POD-Diagnosis — error diagnosis of sporadic operations on cloud
//! applications.
//!
//! This is the umbrella crate of the workspace: it re-exports every
//! subsystem so examples and downstream users can depend on a single crate.
//! See the repository `README.md` for the architecture overview and
//! `DESIGN.md` for the paper-to-module mapping.
//!
//! The workspace reproduces the system described in *"POD-Diagnosis: Error
//! Diagnosis of Sporadic Operations on Cloud Applications"* (DSN 2014):
//! sporadic operations (the case study is a rolling upgrade) are modelled as
//! explicit processes; log lines are annotated with process context and
//! drive token-replay conformance checking and assertion evaluation; any
//! detected error triggers a fault-tree walk that runs on-demand diagnostic
//! tests to pinpoint root causes.
//!
//! # Quickstart
//!
//! ```
//! use pod_diagnosis::eval::{Campaign, CampaignConfig};
//!
//! // Run a tiny fault-injection campaign (2 runs per fault type).
//! let config = CampaignConfig { runs_per_fault: 2, seed: 42, ..CampaignConfig::default() };
//! let report = Campaign::new(config).run();
//! assert!(report.overall.detection_recall() > 0.9);
//! ```

pub use pod_assert as assert;
pub use pod_cloud as cloud;
pub use pod_core as core;
pub use pod_eval as eval;
pub use pod_faulttree as faulttree;
pub use pod_gateway as gateway;
pub use pod_log as log;
pub use pod_mining as mining;
pub use pod_obs as obs;
pub use pod_orchestrator as orchestrator;
pub use pod_process as process;
pub use pod_recovery as recovery;
pub use pod_regex as regex;
pub use pod_sim as sim;
